"""Sparse matrix-vector product on 27-point 3D-grid matrices (HPCCG).

HPCCG builds a symmetric 27-point operator over an ``nx × ny × nz``
local grid, partitioned across ranks along z.  We reproduce the same
structure as a CSR matrix whose column indices point into a *padded*
local vector ``[halo_lo | local | halo_hi]``, so the distributed matvec
is: exchange one xy-plane with each z-neighbour, then a purely local
CSR spmv.

The cost model (≈ 12 bytes per nonzero of matrix streaming + 16 bytes
per row) gives sparsemv the highest compute-per-output-byte of the three
HPCCG kernels, which is why its intra efficiency reaches ≈ 0.94 in
Figure 5a despite a vector-sized output.

Memoization
-----------
Every rank of every mode of every sweep point builds the *same* handful
of stencil matrices (profiling a two-point Figure 5b sweep showed 72
byte-identical rebuilds).  :func:`build_stencil_csr` therefore memoizes
construction behind a small LRU keyed on
``(nx, ny, nz, has_lower, has_upper, offsets, diag_val, off_val)``.
Cached matrices are shared, so their arrays are frozen read-only
(mutation raises) and per-row-block index lookups (`row_block`) are
cached on the matrix itself.  ``clear_csr_cache`` /
``set_csr_cache_enabled`` / ``csr_cache_info`` control and observe the
cache (the perf benchmark uses them to time cold vs warm builds).
"""

from __future__ import annotations

import collections
import dataclasses
import typing as _t

import numpy as np

from . import cachectl


@dataclasses.dataclass
class CsrMatrix:
    """Compressed-sparse-row matrix with halo-padded column indexing.

    ``col`` indexes into a padded vector of length
    ``halo_lo + n_rows + halo_hi``; the local entries occupy
    ``[halo_lo, halo_lo + n_rows)``.

    Instances returned by the memoized builders are shared: their arrays
    are read-only and :meth:`row_block` results are cached per instance.
    """

    n_rows: int
    halo_lo: int
    halo_hi: int
    row_ptr: np.ndarray  # int64, len n_rows + 1
    col: np.ndarray      # int32, len nnz
    val: np.ndarray      # float64, len nnz
    #: per-row-block lookup cache: (lo, hi) -> (start, stop, boundaries,
    #: empty_rows, nnz, col_block, val_block, scratch); see
    #: :meth:`row_block`
    _block_cache: _t.Dict[_t.Tuple[int, int], tuple] = dataclasses.field(
        default_factory=dict, repr=False, compare=False)

    @property
    def nnz(self) -> int:
        return int(self.val.size)

    @property
    def padded_len(self) -> int:
        return self.halo_lo + self.n_rows + self.halo_hi

    def row_block(self, lo: int, hi: int) -> tuple:
        """Cached index data of the row block [lo, hi): a tuple
        ``(start, stop, boundaries, empty_rows, nnz, col_block,
        val_block, scratch)`` where ``start`` / ``stop`` delimit the
        block's nonzeros, ``boundaries`` are the block-relative
        ``reduceat`` offsets, ``empty_rows`` indexes zero-nonzero rows
        (``None`` when there are none — the common case for stencil
        operators), ``col_block`` / ``val_block`` are the contiguous
        indptr-sliced views of the block's column indices and values,
        and ``scratch`` is a reusable float64 buffer of ``nnz`` entries
        (the gather/product temporary of :func:`spmv_rows`).

        The intra runtime evaluates each task's cost several times per
        section (scheduling + roofline charging) and executes the same
        row blocks every iteration, so these lookups are worth caching.
        When kernel caching is disabled (:func:`set_csr_cache_enabled`),
        the lookup is recomputed per call and the slice/scratch entries
        are ``None`` (the reference kernel path does not use them).
        """
        key = (lo, hi)
        blk = self._block_cache.get(key)
        if blk is None:
            row_ptr = self.row_ptr
            start = int(row_ptr[lo])
            stop = int(row_ptr[hi])
            counts = row_ptr[lo + 1:hi + 1] - row_ptr[lo:hi]
            boundaries = np.zeros(hi - lo, dtype=np.intp)
            np.cumsum(counts[:-1], out=boundaries[1:])
            empties = np.flatnonzero(counts == 0)
            if cachectl.enabled():
                blk = (start, stop, boundaries,
                       empties if empties.size else None, stop - start,
                       self.col[start:stop], self.val[start:stop],
                       np.empty(stop - start))
                self._block_cache[key] = blk
            else:
                blk = (start, stop, boundaries,
                       empties if empties.size else None, stop - start,
                       None, None, None)
        return blk

    def row_nnz(self, lo: int, hi: int) -> int:
        """Nonzeros in the row block [lo, hi) (cached)."""
        return self.row_block(lo, hi)[4]


#: the 27 offsets of the 3×3×3 stencil
OFFSETS_27 = [(dx, dy, dz) for dz in (-1, 0, 1) for dy in (-1, 0, 1)
              for dx in (-1, 0, 1)]
#: the 7 offsets of the axis-aligned stencil
OFFSETS_7 = [(0, 0, 0), (-1, 0, 0), (1, 0, 0), (0, -1, 0), (0, 1, 0),
             (0, 0, -1), (0, 0, 1)]


def _build_stencil_arrays(nx: int, ny: int, nz: int, has_lower: bool,
                          has_upper: bool,
                          offsets: _t.Tuple[_t.Tuple[int, int, int], ...],
                          diag_val: float, off_val: float) -> CsrMatrix:
    """The actual CSR construction (uncached).

    Rows are enumerated directly in canonical order (``idx = x + nx*y +
    nx*ny*z``, x fastest — HPCCG's ordering), so no post-hoc ``argsort``
    permutation is needed, and the per-offset columns are written into
    preallocated ``(n, n_offsets)`` arrays instead of stacked.
    """
    plane = nx * ny
    n = plane * nz
    halo_lo = plane if has_lower else 0
    halo_hi = plane if has_upper else 0

    rows = np.arange(n)
    X = rows % nx
    Y = (rows // nx) % ny
    Z = rows // plane

    n_off = len(offsets)
    cols = np.empty((n, n_off), dtype=np.int64)
    valids = np.empty((n, n_off), dtype=bool)
    vals = np.empty((n, n_off), dtype=np.float64)
    for j, (dx, dy, dz) in enumerate(offsets):
        nxx, nyy, nzz = X + dx, Y + dy, Z + dz
        valid = ((0 <= nxx) & (nxx < nx)
                 & (0 <= nyy) & (nyy < ny))
        # z legs may cross into halo planes
        below = nzz < 0
        above = nzz >= nz
        if not has_lower:
            valid &= ~below
        if not has_upper:
            valid &= ~above
        xy = nxx + nx * nyy
        # padded column index: lower halo | interior | upper halo
        cols[:, j] = np.where(below, xy,
                              np.where(above, halo_lo + n + xy,
                                       halo_lo + xy + plane * nzz))
        valids[:, j] = valid
        diag = (dx == 0) and (dy == 0) and (dz == 0)
        vals[:, j] = diag_val if diag else off_val

    counts = valids.sum(axis=1)
    row_ptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=row_ptr[1:])
    flat_cols = cols[valids].astype(np.int32)
    flat_vals = vals[valids]
    return CsrMatrix(n_rows=n, halo_lo=halo_lo, halo_hi=halo_hi,
                     row_ptr=row_ptr, col=flat_cols, val=flat_vals)


def _build_stencil_arrays_reference(
        nx: int, ny: int, nz: int, has_lower: bool, has_upper: bool,
        offsets: _t.Tuple[_t.Tuple[int, int, int], ...],
        diag_val: float, off_val: float) -> CsrMatrix:
    """The seed's CSR construction, kept verbatim as a reference
    implementation: it is the oracle the optimized builder is
    differential-tested against, and the path taken when kernel caching
    is disabled (the perf benchmark's seed-equivalent baseline).

    Enumerates the grid in meshgrid order and sorts rows into canonical
    order afterwards (``np.stack`` + ``argsort`` — the round-trip the
    optimized builder avoids).
    """
    plane = nx * ny
    n = plane * nz
    halo_lo = plane if has_lower else 0
    halo_hi = plane if has_upper else 0

    ix = np.arange(nx)
    iy = np.arange(ny)
    iz = np.arange(nz)
    X, Y, Z = np.meshgrid(ix, iy, iz, indexing="ij")
    X = X.ravel()
    Y = Y.ravel()
    Z = Z.ravel()
    row_of = (X + nx * Y + plane * Z)

    cols_per_offset = []
    valid_per_offset = []
    vals_per_offset = []
    for dx, dy, dz in offsets:
        nxx, nyy, nzz = X + dx, Y + dy, Z + dz
        valid = ((0 <= nxx) & (nxx < nx)
                 & (0 <= nyy) & (nyy < ny))
        below = nzz < 0
        above = nzz >= nz
        if has_lower:
            z_ok = np.ones_like(valid)
        else:
            z_ok = ~below
        if not has_upper:
            z_ok = z_ok & ~above
        valid = valid & z_ok
        col = np.where(
            below, nxx + nx * nyy,
            np.where(above,
                     halo_lo + n + nxx + nx * nyy,
                     halo_lo + nxx + nx * nyy + plane * nzz))
        diag = (dx == 0) and (dy == 0) and (dz == 0)
        vals = np.where(diag, diag_val, off_val)
        cols_per_offset.append(col)
        valid_per_offset.append(valid)
        vals_per_offset.append(np.broadcast_to(vals, col.shape))

    cols = np.stack(cols_per_offset, axis=1)
    valids = np.stack(valid_per_offset, axis=1)
    vals = np.stack(vals_per_offset, axis=1)
    counts = valids.sum(axis=1)
    order = np.argsort(row_of, kind="stable")
    cols = cols[order]
    valids = valids[order]
    vals = vals[order]
    counts = counts[order]

    row_ptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=row_ptr[1:])
    flat_cols = cols[valids].astype(np.int32)
    flat_vals = vals[valids].astype(np.float64)
    return CsrMatrix(n_rows=n, halo_lo=halo_lo, halo_hi=halo_hi,
                     row_ptr=row_ptr, col=flat_cols, val=flat_vals)


# --------------------------------------------------------------- LRU cache
_CSR_CACHE_MAX = 32
_csr_cache: "collections.OrderedDict[tuple, CsrMatrix]" = \
    collections.OrderedDict()
_csr_hits = 0
_csr_misses = 0
#: total number of actual (uncached) constructions, for cache tests
build_count = 0


def set_csr_cache_enabled(enabled: bool) -> bool:
    """Enable/disable kernel-layer caching (CSR memoization, row-block
    lookups, stencil scratch, blas temporaries); returns the previous
    setting."""
    return cachectl.set_enabled(enabled)


def clear_csr_cache() -> None:
    """Drop all memoized matrices and reset hit/miss counters."""
    global _csr_hits, _csr_misses
    _csr_cache.clear()
    _csr_hits = 0
    _csr_misses = 0


def csr_cache_info() -> _t.Dict[str, int]:
    """Cache observability: hits, misses, current size, max size."""
    return {"hits": _csr_hits, "misses": _csr_misses,
            "size": len(_csr_cache), "maxsize": _CSR_CACHE_MAX,
            "builds": build_count}


def build_stencil_csr(nx: int, ny: int, nz: int, has_lower: bool,
                      has_upper: bool,
                      offsets: _t.Sequence[_t.Tuple[int, int, int]],
                      diag_val: float, off_val: float) -> CsrMatrix:
    """Explicit CSR matrix of a constant-coefficient stencil operator
    over the local ``nx·ny·nz`` grid (z-partitioned across ranks).

    ``has_lower`` / ``has_upper`` say whether a z-neighbour rank exists;
    if so, stencil legs crossing the boundary point into the halo planes
    (one xy-plane of ``nx·ny`` entries per side).  Legs leaving the
    global domain in x/y are dropped (Dirichlet-like truncation, as in
    HPCCG's local grid mode).

    Storing the operator *explicitly* — values and column indices —
    matters for the reproduction: it is the matrix streaming traffic
    that gives CSR spmv its high compute-per-output-byte ratio (§V-C),
    both in HPCCG and in AMG2013 (an *algebraic* multigrid, which keeps
    CSR matrices at every level).

    Construction is memoized (see module docstring); the returned matrix
    may be shared with other callers and its arrays are read-only.
    """
    global _csr_hits, _csr_misses, build_count
    if min(nx, ny, nz) < 1:
        raise ValueError("grid dimensions must be positive")
    key_offsets = tuple((int(dx), int(dy), int(dz))
                        for dx, dy, dz in offsets)
    if not cachectl.enabled():
        # uncached mode is the seed-equivalent reference configuration
        build_count += 1
        return _build_stencil_arrays_reference(
            nx, ny, nz, bool(has_lower), bool(has_upper), key_offsets,
            float(diag_val), float(off_val))
    key = (nx, ny, nz, bool(has_lower), bool(has_upper), key_offsets,
           float(diag_val), float(off_val))
    matrix = _csr_cache.get(key)
    if matrix is not None:
        _csr_hits += 1
        _csr_cache.move_to_end(key)
        return matrix
    _csr_misses += 1
    build_count += 1
    matrix = _build_stencil_arrays(nx, ny, nz, bool(has_lower),
                                   bool(has_upper), key_offsets,
                                   float(diag_val), float(off_val))
    # shared instances must be immutable
    matrix.row_ptr.flags.writeable = False
    matrix.col.flags.writeable = False
    matrix.val.flags.writeable = False
    _csr_cache[key] = matrix
    if len(_csr_cache) > _CSR_CACHE_MAX:
        _csr_cache.popitem(last=False)
    return matrix


def build_27pt(nx: int, ny: int, nz: int, has_lower: bool,
               has_upper: bool) -> CsrMatrix:
    """The HPCCG operator: 27 on the diagonal, −1 on every neighbour
    within the 3×3×3 stencil (also AMG2013's 27-point Laplace problem)."""
    return build_stencil_csr(nx, ny, nz, has_lower, has_upper,
                             OFFSETS_27, diag_val=27.0, off_val=-1.0)


def build_7pt(nx: int, ny: int, nz: int, has_lower: bool,
              has_upper: bool) -> CsrMatrix:
    """The 7-point Laplace operator of AMG2013's GMRES problem: 6 on the
    diagonal, −1 on the six axis neighbours."""
    return build_stencil_csr(nx, ny, nz, has_lower, has_upper,
                             OFFSETS_7, diag_val=6.0, off_val=-1.0)


def _spmv_rows_reference(matrix: CsrMatrix, x_padded: np.ndarray, lo: int,
                         hi: int, y_block: np.ndarray) -> None:
    """The seed's row-block product, kept verbatim: the differential
    oracle for :func:`spmv_rows` and the path taken when kernel caching
    is disabled (all boundary indices recomputed per call)."""
    start = int(matrix.row_ptr[lo])
    stop = int(matrix.row_ptr[hi])
    prod = matrix.val[start:stop] * x_padded[matrix.col[start:stop]]
    counts = (matrix.row_ptr[lo + 1:hi + 1]
              - matrix.row_ptr[lo:hi]).astype(np.int64)
    boundaries = np.concatenate(
        ([0], np.cumsum(counts)[:-1])).astype(np.int64)
    if prod.size:
        sums = np.add.reduceat(prod, boundaries)
        sums[counts == 0] = 0.0
    else:
        sums = np.zeros(hi - lo)
    np.copyto(y_block, sums)


def spmv_rows(matrix: CsrMatrix, x_padded: np.ndarray, lo: int, hi: int,
              y_block: np.ndarray) -> None:
    """``y[lo:hi] = A[lo:hi, :] @ x_padded`` — one intra-parallel task.

    Vectorised CSR row-block product over the matrix's precomputed block
    slices (no Python-level row loop, no per-call temporaries): the
    gather runs through ``np.take`` into the block's reusable scratch
    buffer, the product is formed in place, and the segmented sum
    (``np.add.reduceat`` on the cached row boundaries) reduces straight
    into ``y_block``.  The arithmetic — gather, multiply, left-to-right
    segmented sum — is operation-for-operation the reference kernel's,
    so results are bit-identical to :func:`_spmv_rows_reference`
    (``tests/kernels/test_csr_cache.py`` asserts exact equality).

    ``x_padded`` and ``y_block`` must be float64 (all kernel call sites
    are); ``y_block`` must be a contiguous view of ``hi - lo`` entries.
    """
    if not cachectl.enabled():
        _spmv_rows_reference(matrix, x_padded, lo, hi, y_block)
        return
    (start, stop, boundaries, empty_rows, _nnz,
     col_block, val_block, scratch) = matrix.row_block(lo, hi)
    if stop > start:
        np.take(x_padded, col_block, out=scratch)
        np.multiply(scratch, val_block, out=scratch)
        np.add.reduceat(scratch, boundaries, out=y_block)
        if empty_rows is not None:
            y_block[empty_rows] = 0.0
    else:
        y_block.fill(0.0)


def spmv_cost(matrix: CsrMatrix, lo: int, hi: int) -> _t.Tuple[float, float]:
    """Roofline cost of the row block [lo, hi): 2 flops per nonzero;
    12 bytes per nonzero (value + column index) plus 16 bytes per row
    (row pointer + y write); x gathers are assumed cache-resident for
    the banded 27-point structure."""
    nnz = matrix.row_nnz(lo, hi)
    rows = hi - lo
    return (2.0 * nnz, 12.0 * nnz + 16.0 * rows)


def make_spmv_task(matrix: CsrMatrix):
    """Bind a matrix into an intra-task function + cost pair.

    The returned function has signature ``(x_padded, lo_arr, y_block)``
    with tags ``[IN, IN, OUT]``; ``lo_arr`` is a 2-int array holding
    ``(lo, hi)`` (kept as an array so the launch API stays uniform).
    """
    def fn(x_padded: np.ndarray, bounds: np.ndarray,
           y_block: np.ndarray) -> None:
        spmv_rows(matrix, x_padded, int(bounds[0]), int(bounds[1]),
                  y_block)

    def cost(x_padded: np.ndarray, bounds: np.ndarray,
             y_block: np.ndarray) -> _t.Tuple[float, float]:
        return spmv_cost(matrix, int(bounds[0]), int(bounds[1]))

    return fn, cost
