"""Process-wide switch for the kernel-layer caches.

One flag governs every cache in :mod:`repro.kernels` — CSR memoization
and row-block lookups (:mod:`.spmv`), the stencil scratch buffers
(:mod:`.stencil`) and the waxpby temporaries (:mod:`.blas`).  Disabling
it makes every kernel call allocate and compute from scratch, which is
exactly the seed behaviour the perf benchmark uses as its baseline leg.
"""

from __future__ import annotations

_enabled = True


def set_enabled(flag: bool) -> bool:
    """Set the kernel-cache switch; returns the previous value.

    ``False`` is the oracle fallback: every kernel call allocates and
    computes from scratch (the seed behaviour), bit-identical to the
    cached path — ``tests/kernels`` proves equality and
    ``benchmarks/test_perf_engine.py`` times both legs."""
    global _enabled
    prev = _enabled
    _enabled = bool(flag)
    return prev


def enabled() -> bool:
    """Whether kernel-layer caching is active."""
    return _enabled
