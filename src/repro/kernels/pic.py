"""Particle-in-cell kernels: charge deposition and particle push (GTC).

GTC is a 3D gyrokinetic PIC code; the paper intra-parallelizes its two
main kernels, *charge* (deposit particle charge onto the grid) and
*push* (advance particle positions/velocities), which together account
for 75% of the runtime.  Push is the paper's example of an ``inout``
kernel: "the new position of particles has to be computed at the end of
each iteration ... declare particles position as inout variables since
the new position depends on the current one" (§IV).

We implement a 1D-periodic electrostatic PIC with cloud-in-cell
weighting — the same data-flow signature (scatter for charge, gather +
integrate for push) at laptop scale:

* ``charge``: IN particle positions → OUT *private* grid slice per task
  (tasks deposit into private grids; replicas locally reduce the
  privates after the section, preserving task independence);
* ``push``: IN field, INOUT positions, INOUT velocities.
"""

from __future__ import annotations

import typing as _t

import numpy as np


def charge_deposit(pos: np.ndarray, ngrid_arr: np.ndarray,
                   rho_out: np.ndarray) -> None:
    """Cloud-in-cell deposition of unit charges at ``pos`` (positions in
    grid units, periodic in [0, ngrid)) into private grid ``rho_out``."""
    ngrid = int(ngrid_arr[0])
    if rho_out.size != ngrid:
        raise ValueError(f"rho_out size {rho_out.size} != ngrid {ngrid}")
    rho_out.fill(0.0)
    cell = np.floor(pos).astype(np.int64) % ngrid
    frac = pos - np.floor(pos)
    np.add.at(rho_out, cell, 1.0 - frac)
    np.add.at(rho_out, (cell + 1) % ngrid, frac)


#: Cost calibration: our 1D CIC kernels *execute* a few ops per
#: particle, but the roofline charge models GTC's real gyrokinetic
#: kernels — 4-point gyro-averaged deposition (~150 flops/particle) and
#: a gyro-center push with field interpolation at four gyro-points and
#: geometric terms (~300 flops/particle).  This compute-per-particle is
#: what makes charge/push profitable to intra-parallelize (compare the
#: 16–32 bytes of update per particle): with the literal 1D-CIC flop
#: counts the kernels would be waxpby-like and the paper's Figure 6c
#: could not arise on *any* hardware.
CHARGE_FLOPS_PER_PARTICLE = 150.0
PUSH_FLOPS_PER_PARTICLE = 300.0


def charge_cost(pos: np.ndarray, ngrid_arr: np.ndarray,
                rho_out: np.ndarray) -> _t.Tuple[float, float]:
    """Gyro-averaged deposition: ~150 flops and 16 streamed bytes per
    particle, plus the private-grid write (scattered grid updates are
    cache-resident for the small per-task grids)."""
    n = pos.size
    return (CHARGE_FLOPS_PER_PARTICLE * n, 16.0 * n + 8.0 * rho_out.size)


def push_particles(efield: np.ndarray, dt_arr: np.ndarray,
                   pos: np.ndarray, vel: np.ndarray) -> None:
    """Leapfrog push: gather E at particle cells, kick velocities,
    drift positions (periodic wrap).  ``pos``/``vel`` are INOUT."""
    ngrid = efield.size
    dt = float(dt_arr[0])
    cell = np.floor(pos).astype(np.int64) % ngrid
    frac = pos - np.floor(pos)
    e_here = efield[cell] * (1.0 - frac) + efield[(cell + 1) % ngrid] * frac
    vel += e_here * dt
    pos += vel * dt
    np.mod(pos, float(ngrid), out=pos)


def push_cost(efield: np.ndarray, dt_arr: np.ndarray, pos: np.ndarray,
              vel: np.ndarray) -> _t.Tuple[float, float]:
    """Gyro-center push: ~300 flops per particle (see module note);
    read+write pos and vel = 32 bytes per particle plus gathered field
    reads (cache-resident grid)."""
    n = pos.size
    return (PUSH_FLOPS_PER_PARTICLE * n, 32.0 * n)


def solve_field(rho: np.ndarray, efield_out: np.ndarray) -> None:
    """Simplified periodic field solve: E = -grad(phi) with
    phi = smoothed(rho - mean).  Spectral Poisson solve in 1D.

    Kept on the logical-process level (outside intra sections) like
    GTC's field solve, which the paper does not intra-parallelize.
    """
    ngrid = rho.size
    rho_hat = np.fft.rfft(rho - rho.mean())
    k = np.fft.rfftfreq(ngrid, d=1.0) * 2.0 * np.pi
    phi_hat = np.zeros_like(rho_hat)
    nonzero = k != 0
    phi_hat[nonzero] = rho_hat[nonzero] / (k[nonzero] ** 2)
    phi = np.fft.irfft(phi_hat, n=ngrid)
    # E = -dphi/dx, centered differences, periodic
    np.subtract(np.roll(phi, 1), np.roll(phi, -1), out=efield_out)
    efield_out *= 0.5


def field_cost(rho: np.ndarray,
               efield_out: np.ndarray) -> _t.Tuple[float, float]:
    """FFT-ish: 5 n log2 n flops, a few passes over the grid."""
    n = rho.size
    return (5.0 * n * max(1.0, np.log2(n)), 48.0 * n)
