"""Computational kernels with roofline cost models (system S8)."""

from .blas import (ddot_cost, ddot_partial, grid_sum_cost, grid_sum_partial,
                   waxpby, waxpby_cost)
from .partition import split_blocks, split_range
from .pic import (charge_cost, charge_deposit, field_cost, push_cost,
                  push_particles, solve_field)
from .spmv import (OFFSETS_27, OFFSETS_7, CsrMatrix, build_27pt, build_7pt,
                   build_stencil_csr, clear_csr_cache, csr_cache_info,
                   make_spmv_task, set_csr_cache_enabled, spmv_cost,
                   spmv_rows)
from .stencil import (apply_27pt, apply_27pt_matvec, apply_7pt,
                      clear_stencil_scratch, stencil27_cost,
                      stencil27_matvec_cost, stencil7_cost)

__all__ = [
    "CsrMatrix", "OFFSETS_27", "OFFSETS_7", "apply_27pt",
    "apply_27pt_matvec", "apply_7pt", "build_27pt", "build_7pt",
    "build_stencil_csr", "charge_cost", "charge_deposit",
    "clear_csr_cache", "clear_stencil_scratch", "csr_cache_info",
    "ddot_cost", "ddot_partial", "field_cost", "grid_sum_cost",
    "grid_sum_partial", "make_spmv_task", "push_cost", "push_particles",
    "set_csr_cache_enabled", "solve_field", "spmv_cost", "spmv_rows",
    "split_blocks", "split_range", "stencil27_cost",
    "stencil27_matvec_cost", "stencil7_cost", "waxpby", "waxpby_cost",
]
