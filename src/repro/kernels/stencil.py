"""Structured stencils: 27-point and 7-point (MiniGhost, AMG problems).

Grids are ``(nx, ny, nz+2)`` arrays with one halo xy-plane at each end
of z (the rank-partitioned axis); x/y boundaries are treated as zero
(truncated legs).  The stencil writes a full new grid — exactly the case
the paper found *not* amenable to intra-parallelization in MiniGhost
("the output is a new 3D matrix"), so its cost model matters mostly for
the native/SDR baselines.

The x/y-padded staging array each application needs is recycled through
a small per-shape scratch cache: a MiniGhost run applies the stencil
thousands of times on identically shaped grids, and the padded borders
only ever hold zeros, so the buffer is allocated (and its border zeroed)
once per shape.
"""

from __future__ import annotations

import typing as _t

import numpy as np

from . import cachectl

#: per-shape scratch arrays; borders of "pad" entries stay zero
_scratch: _t.Dict[tuple, np.ndarray] = {}


def clear_stencil_scratch() -> None:
    """Drop the scratch-buffer cache (tests / memory pressure)."""
    _scratch.clear()


def _padded(grid: np.ndarray) -> np.ndarray:
    """Return ``grid`` staged into an x/y zero-padded scratch array."""
    nx, ny, nz2 = grid.shape
    if not cachectl.enabled():
        buf = np.zeros((nx + 2, ny + 2, nz2))
        buf[1:-1, 1:-1, :] = grid
        return buf
    key = ("pad", nx, ny, nz2)
    buf = _scratch.get(key)
    if buf is None:
        buf = _scratch[key] = np.zeros((nx + 2, ny + 2, nz2))
    buf[1:-1, 1:-1, :] = grid
    return buf


def _interior_scratch(shape: tuple) -> np.ndarray:
    """An uninitialised per-shape temporary of interior shape."""
    if not cachectl.enabled():
        return np.empty(shape)
    key = ("tmp", *shape)
    buf = _scratch.get(key)
    if buf is None:
        buf = _scratch[key] = np.empty(shape)
    return buf


def apply_27pt(grid: np.ndarray, out: np.ndarray) -> None:
    """27-point average stencil over the interior z-range.

    ``grid`` has shape (nx, ny, nz+2) including halos; ``out`` has shape
    (nx, ny, nz) and receives the unweighted 27-neighbour average
    (MiniGhost's GROWTH/heat-diffusion flavour).
    """
    nx, ny, nz2 = grid.shape
    nz = nz2 - 2
    if out.shape != (nx, ny, nz):
        raise ValueError(f"out shape {out.shape} != {(nx, ny, nz)}")
    padded = _padded(grid)
    out.fill(0.0)
    for dx in (0, 1, 2):
        for dy in (0, 1, 2):
            for dz in (0, 1, 2):
                out += padded[dx:dx + nx, dy:dy + ny, dz:dz + nz]
    out /= 27.0


def stencil27_cost(grid: np.ndarray,
                   out: np.ndarray) -> _t.Tuple[float, float]:
    """27 adds + 1 divide per cell; ~32 streamed bytes per cell (read
    once through cache-blocked planes, write once, plus halo traffic)."""
    n = out.size
    return (28.0 * n, 32.0 * n)


def apply_7pt(grid: np.ndarray, out: np.ndarray) -> None:
    """7-point Laplace-like stencil: ``out = 6*c - (six neighbours)``
    (the operator of AMG2013's 7-point problem)."""
    nx, ny, nz2 = grid.shape
    nz = nz2 - 2
    if out.shape != (nx, ny, nz):
        raise ValueError(f"out shape {out.shape} != {(nx, ny, nz)}")
    padded = _padded(grid)
    c = padded[1:-1, 1:-1, 1:-1]
    np.multiply(c, 6.0, out=out)
    out -= padded[0:-2, 1:-1, 1:-1]
    out -= padded[2:, 1:-1, 1:-1]
    out -= padded[1:-1, 0:-2, 1:-1]
    out -= padded[1:-1, 2:, 1:-1]
    out -= padded[1:-1, 1:-1, 0:-2]
    out -= padded[1:-1, 1:-1, 2:]


def stencil7_cost(grid: np.ndarray,
                  out: np.ndarray) -> _t.Tuple[float, float]:
    """7 flops per cell; ~24 streamed bytes per cell."""
    n = out.size
    return (7.0 * n, 24.0 * n)


def apply_27pt_matvec(grid: np.ndarray, out: np.ndarray) -> None:
    """27-point Laplace-like operator ``26*c - neighbours`` (the AMG2013
    27-point problem's matrix action, matching :func:`build_27pt` with
    diagonal 27 up to the self-term convention)."""
    nx, ny, nz2 = grid.shape
    nz = nz2 - 2
    if out.shape != (nx, ny, nz):
        raise ValueError(f"out shape {out.shape} != {(nx, ny, nz)}")
    padded = _padded(grid)
    out.fill(0.0)
    for dx in (0, 1, 2):
        for dy in (0, 1, 2):
            for dz in (0, 1, 2):
                if dx == 1 and dy == 1 and dz == 1:
                    continue
                out += padded[dx:dx + nx, dy:dy + ny, dz:dz + nz]
    # out = 27*c - neighbour_sum, via a recycled temporary
    tmp = _interior_scratch(out.shape)
    np.multiply(padded[1:-1, 1:-1, 1:-1], 27.0, out=tmp)
    np.subtract(tmp, out, out=out)


def stencil27_matvec_cost(grid: np.ndarray,
                          out: np.ndarray) -> _t.Tuple[float, float]:
    """27 flops per cell; ~32 streamed bytes per cell (27-pt operator has
    the same data movement as the averaging stencil)."""
    n = out.size
    return (27.0 * n, 32.0 * n)
