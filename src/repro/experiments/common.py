"""Experiment-harness glue over the scenario layer.

Scale note: the paper runs 128–512 physical processes with 128³-per-
process problems on real hardware; a pure-Python DES cannot hold that,
so experiments run the same codes at reduced rank counts and grid sizes
on the calibrated ``GRID5000_2015`` machine model.  The quantities the
paper's claims rest on — flops-per-output-byte ratios, update-transfer
overlap, replication protocol behaviour — are scale-free or verified to
be rank-count invariant (Figure 5b shows flat efficiency across 128→512
processes; our weak-scaling bench shows the same flatness at 8→32).

Every figure point is a :class:`~repro.scenarios.Scenario`; the figure
modules build scenario grids, register them, and evaluate them through
the :mod:`repro.api` facade (:func:`repro.sweep` — process-pool
fan-out, results memoized on scenario hashes so equal points dedupe
across figures).  :func:`run_mode` remains as a deprecated
keyword-argument shim; it builds a scenario and delegates to
:func:`repro.run`.
"""

from __future__ import annotations

import typing as _t

from .._deprecation import warn_once
from ..analysis import (doubled_resource_efficiency,
                        fixed_resource_efficiency)
from ..results import RunResult
from ..intra import CopyStrategy, Scheduler
from ..netmodel import (GRID5000_MACHINE, GRID5000_NETWORK, MachineSpec,
                        NetworkSpec)
from ..scenarios import (ModeRun, Scenario, app_ref, machine_name_for,
                         network_name_for, nodes_for, sweep_scenarios)

__all__ = ["ModeRun", "nodes_for", "run_mode", "scenario_for",
           "sweep_scenarios", "three_mode_rows"]


def scenario_for(mode: str, program: _t.Callable, n_logical: int,
                 config: _t.Any, *,
                 machine: MachineSpec = GRID5000_MACHINE,
                 netspec: NetworkSpec = GRID5000_NETWORK, degree: int = 2,
                 spread: int = 1, distance_model: str = "switch",
                 scheduler: _t.Optional[_t.Union[str, Scheduler]] = None,
                 copy_strategy: CopyStrategy = CopyStrategy.LAZY
                 ) -> Scenario:
    """Build the :class:`~repro.scenarios.Scenario` equivalent of the
    historical ``run_mode`` keyword bundle."""
    return Scenario(
        app=app_ref(program), config=config, n_logical=n_logical,
        mode=mode, degree=degree, spread=spread,
        machine=machine_name_for(machine),
        network=network_name_for(netspec),
        distance_model=distance_model, scheduler=scheduler,
        copy_strategy=copy_strategy)


def run_mode(mode: str, program: _t.Callable, n_logical: int,
             config: _t.Any, **kw: _t.Any) -> RunResult:
    """Deprecated: build the scenario (:func:`scenario_for`) and use
    :func:`repro.run` — the :mod:`repro.api` facade — instead.

    Warns :class:`DeprecationWarning` once per process, then delegates
    to the facade; the returned
    :class:`~repro.results.RunResult` duck-types the historical
    ``ModeRun`` (same ``mode``/``wall_time``/``timers``/``intra``/
    ``value``/``crashes`` payload) and adds scenario + cache
    provenance.
    """
    warn_once("repro.experiments.run_mode",
              "repro.experiments.run_mode is deprecated; use "
              "repro.run(repro.experiments.scenario_for(...)) or a "
              "registered scenario name instead")
    from ..api import run as api_run
    return api_run(scenario_for(mode, program, n_logical, config, **kw))


def three_mode_rows(native: ModeRun, sdr: ModeRun, intra: ModeRun,
                    convention: str) -> _t.List[_t.Dict[str, _t.Any]]:
    """Rows of {mode, time, efficiency} under the figure's efficiency
    convention ('fixed' for Fig 5, 'doubled' for Fig 6)."""
    eff = (fixed_resource_efficiency if convention == "fixed"
           else doubled_resource_efficiency)
    rows = [dict(mode="Open MPI", time=native.wall_time, efficiency=1.0)]
    for run, label in ((sdr, "SDR-MPI"), (intra, "intra")):
        rows.append(dict(mode=label, time=run.wall_time,
                         efficiency=eff(native.wall_time, run.wall_time)))
    return rows
