"""Experiment runner: one program, three modes, calibrated testbed.

Scale note: the paper runs 128–512 physical processes with 128³-per-
process problems on real hardware; a pure-Python DES cannot hold that,
so experiments run the same codes at reduced rank counts and grid sizes
on the calibrated ``GRID5000_2015`` machine model.  The quantities the
paper's claims rest on — flops-per-output-byte ratios, update-transfer
overlap, replication protocol behaviour — are scale-free or verified to
be rank-count invariant (Figure 5b shows flat efficiency across 128→512
processes; our weak-scaling bench shows the same flatness at 8→32).
"""

from __future__ import annotations

import dataclasses
import typing as _t

from ..analysis import (doubled_resource_efficiency,
                        fixed_resource_efficiency, mean)
from ..intra import CopyStrategy, Scheduler, launch_mode
from ..mpi import MpiWorld
from ..netmodel import (GRID5000_MACHINE, GRID5000_NETWORK, Cluster,
                        MachineSpec, NetworkSpec)
from ..perf import run_sweep


@dataclasses.dataclass
class ModeRun:
    """Aggregated outcome of one program in one mode."""

    mode: str
    #: max over ranks of the 'solve' region (app wall time)
    wall_time: float
    #: per-region wall time, averaged over ranks (replica 0 under
    #: replication, matching the paper's per-process averages)
    timers: _t.Dict[str, float]
    #: averaged intra-runtime statistics
    intra: _t.Dict[str, float]
    #: rank-0 application value (correctness payload)
    value: _t.Any


def nodes_for(mode: str, n_logical: int, machine: MachineSpec,
              degree: int = 2, spread: int = 1) -> int:
    """Cluster size needed by each mode's placement."""
    cores = machine.cores_per_node
    group = -(-n_logical // cores)
    if mode == "native":
        return group
    return group * (1 + (degree - 1) * spread)


def run_mode(mode: str, program: _t.Callable, n_logical: int,
             config: _t.Any, *, machine: MachineSpec = GRID5000_MACHINE,
             netspec: NetworkSpec = GRID5000_NETWORK, degree: int = 2,
             spread: int = 1, distance_model: str = "switch",
             scheduler: _t.Optional[Scheduler] = None,
             copy_strategy: CopyStrategy = CopyStrategy.LAZY) -> ModeRun:
    """Run ``program(ctx, comm, config)`` in one of the paper's three
    configurations and aggregate results."""
    cluster = Cluster(nodes_for(mode, n_logical, machine, degree, spread),
                      machine, distance_model=distance_model)
    world = MpiWorld(cluster, netspec)
    kw: _t.Dict[str, _t.Any] = dict(args=(config,))
    if mode != "native":
        kw.update(degree=degree, spread=spread)
    if mode == "intra":
        kw.update(scheduler=scheduler, copy_strategy=copy_strategy)
    job = launch_mode(mode, world, program, n_logical, **kw)
    world.run()

    if mode == "native":
        results = job.results()
    else:
        # replica 0 of each logical rank (paper: per-process averages;
        # replicas are symmetric so either one works)
        results = [row[0] for row in job.results()]
    wall = max(r.timers.get("solve", r.end_time) for r in results)
    timer_keys = set().union(*(r.timers.keys() for r in results))
    timers = {k: mean([r.timers.get(k, 0.0) for r in results])
              for k in timer_keys}
    intra_keys = set().union(*(r.intra.keys() for r in results))
    intra = {k: mean([float(r.intra.get(k, 0) or 0) for r in results])
             for k in intra_keys}
    return ModeRun(mode=mode, wall_time=wall, timers=timers, intra=intra,
                   value=results[0].value)


def run_mode_point(point: _t.Tuple[str, _t.Callable, int, _t.Any, dict]
                   ) -> ModeRun:
    """Evaluate one ``(mode, program, n_logical, config, kwargs)`` sweep
    point — the module-level (hence picklable) unit of work every
    experiment fans out through :func:`repro.perf.run_sweep`."""
    mode, program, n_logical, config, kw = point
    return run_mode(mode, program, n_logical, config, **kw)


def sweep_modes(points: _t.Sequence[
        _t.Tuple[str, _t.Callable, int, _t.Any, dict]],
        **sweep_kw: _t.Any) -> _t.List[ModeRun]:
    """Run a batch of :func:`run_mode` points through the sweep driver
    (process-pool parallelism + on-disk caching per the perf config)."""
    return run_sweep(points, run_mode_point, tag="run_mode", **sweep_kw)


def three_mode_rows(native: ModeRun, sdr: ModeRun, intra: ModeRun,
                    convention: str) -> _t.List[_t.Dict[str, _t.Any]]:
    """Rows of {mode, time, efficiency} under the figure's efficiency
    convention ('fixed' for Fig 5, 'doubled' for Fig 6)."""
    eff = (fixed_resource_efficiency if convention == "fixed"
           else doubled_resource_efficiency)
    rows = [dict(mode="Open MPI", time=native.wall_time, efficiency=1.0)]
    for run, label in ((sdr, "SDR-MPI"), (intra, "intra")):
        rows.append(dict(mode=label, time=run.wall_time,
                         efficiency=eff(native.wall_time, run.wall_time)))
    return rows
