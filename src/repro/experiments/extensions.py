"""Extension experiments beyond the paper's figures.

The paper's evaluation is failure-free (§VI: "The results presented in
Section V only evaluate the efficiency of intra-parallelization in
failure-free scenarios ... Analyzing the exact efficiency of
intra-parallelization at extreme scale would deserve its own study").
These experiments take the first steps of that study with the machinery
we built:

* :func:`failure_time_sweep` — application efficiency as a function of
  *when* a replica dies: the earlier the crash, the longer the survivor
  computes alone and the closer efficiency falls toward the SDR floor —
  quantifying §VI's argument that failed replicas should be restarted
  quickly.
* :func:`degree_sweep` — intra-parallelization at replication degree
  1–3: work per replica shrinks like 1/d but update traffic grows like
  (d−1), showing why degree 2 is the sweet spot the paper assumes.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from ..analysis import fixed_resource_efficiency
from ..apps.hpccg import HpccgConfig, hpccg_program
from ..intra import launch_intra_job
from ..mpi import MpiWorld
from ..netmodel import (GRID5000_MACHINE, GRID5000_NETWORK, Cluster)
from ..perf import run_sweep
from ..replication import FailureInjector
from .common import nodes_for, run_mode_point, sweep_modes


@dataclasses.dataclass
class FailureSweepRow:
    crash_fraction: float     #: crash time / clean intra run time
    time: float
    efficiency: float
    reexecuted: int


def _crash_point(point: _t.Tuple[HpccgConfig, int, _t.Optional[float]]
                 ) -> _t.Tuple[float, int]:
    """Sweep point: HPCCG intra run with an optional replica crash at
    virtual time ``at``; returns (solve time, tasks re-executed)."""
    config, n_logical, at = point
    world = MpiWorld(
        Cluster(nodes_for("intra", n_logical, GRID5000_MACHINE),
                GRID5000_MACHINE), GRID5000_NETWORK)
    job = launch_intra_job(world, hpccg_program, n_logical,
                           args=(config,))
    if at is not None:
        FailureInjector(job.manager).kill_at(0, 1, at)
    world.run()
    survivor = job.manager.alive_replicas(0)[0]
    solve = max(
        info.app_process.value.timers.get("solve", world.sim.now)
        for row in job.manager.replicas
        for info in row if info.alive)
    return solve, survivor.ctx.intra.stats.tasks_reexecuted


def failure_time_sweep(
        fractions: _t.Sequence[float] = (0.1, 0.5, 0.9),
        n_logical: int = 4,
        config: _t.Optional[HpccgConfig] = None) -> _t.List[FailureSweepRow]:
    """HPCCG intra efficiency when one replica of rank 0 crashes at the
    given fraction of the clean run's duration.  Includes a no-crash
    row (fraction=None encoded as -1) and an SDR reference is implied by
    the 0.5 floor."""
    config = config or HpccgConfig(
        nx=16, ny=16, nz=32, max_iter=6,
        intra_kernels=frozenset({"ddot", "spmv"}))
    # reference times: the native run and the clean (no-crash) intra run
    # are independent — one two-point sweep
    native_cfg = dataclasses.replace(config, nz=config.nz // 2)
    native_result, clean = run_sweep(
        [("native", hpccg_program, 2 * n_logical, native_cfg, {}),
         (config, n_logical, None)],
        _failure_ref_point, tag="failure_time_refs")
    t_clean, _ = clean
    # crash times depend on t_clean, so the crash batch is a second sweep
    crash_results = run_sweep(
        [(config, n_logical, frac * t_clean) for frac in fractions],
        _crash_point, tag="failure_time_sweep")
    rows = [FailureSweepRow(-1.0, t_clean,
                            fixed_resource_efficiency(
                                native_result.wall_time, t_clean), 0)]
    for frac, (t, reexec) in zip(fractions, crash_results):
        rows.append(FailureSweepRow(
            frac, t,
            fixed_resource_efficiency(native_result.wall_time, t),
            reexec))
    return rows


def _failure_ref_point(point):
    """Sweep point dispatching the two reference runs of
    :func:`failure_time_sweep` (a native :func:`run_mode` point or a
    clean :func:`_crash_point`)."""
    if isinstance(point[0], str):
        return run_mode_point(point)
    return _crash_point(point)


@dataclasses.dataclass
class DegreeSweepRow:
    degree: int
    time: float
    efficiency: float
    update_bytes: float


def degree_sweep(degrees: _t.Sequence[int] = (1, 2, 3),
                 n_logical: int = 4) -> _t.List[DegreeSweepRow]:
    """HPCCG intra efficiency vs replication degree, at fixed physical
    resources: degree d uses d replicas per logical rank, each with the
    per-logical problem scaled by d (the Figure 5 convention extended
    beyond 2)."""
    base = HpccgConfig(nx=16, ny=16, nz=8, max_iter=6,
                       intra_kernels=frozenset({"ddot", "spmv"}))
    points = [("native", hpccg_program, n_logical, base, {})]
    for d in degrees:
        cfg = dataclasses.replace(base, nz=base.nz * d)
        if d == 1:
            points.append(("native", hpccg_program, n_logical, cfg, {}))
        else:
            points.append(("intra", hpccg_program, n_logical, cfg,
                           dict(degree=d)))
    runs = sweep_modes(points)
    native = runs[0]
    rows = []
    for d, run in zip(degrees, runs[1:]):
        update_bytes = (0.0 if d == 1
                        else run.intra.get("update_bytes_sent", 0.0))
        rows.append(DegreeSweepRow(
            d, run.wall_time,
            fixed_resource_efficiency(native.wall_time, run.wall_time),
            update_bytes))
    return rows
