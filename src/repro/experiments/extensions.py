"""Extension experiments beyond the paper's figures.

The paper's evaluation is failure-free (§VI: "The results presented in
Section V only evaluate the efficiency of intra-parallelization in
failure-free scenarios ... Analyzing the exact efficiency of
intra-parallelization at extreme scale would deserve its own study").
These experiments take the first steps of that study with the
declarative failure schedules of :mod:`repro.scenarios`:

* :func:`failure_time_sweep` — application efficiency as a function of
  *when* a replica dies (a :class:`~repro.scenarios.FixedFailures`
  schedule per crash time): the earlier the crash, the longer the
  survivor computes alone and the closer efficiency falls toward the
  SDR floor — quantifying §VI's argument that failed replicas should be
  restarted quickly.
* :func:`degree_sweep` — intra-parallelization at replication degree
  1–3: work per replica shrinks like 1/d but update traffic grows like
  (d−1), showing why degree 2 is the sweet spot the paper assumes.
* :func:`poisson_failure_rows` — one seeded
  :class:`~repro.scenarios.PoissonFailures` workload run in all three
  modes: the stochastic schedule is a pure function of its seed, so the
  crash times (and hence every result) are bit-identical across runs,
  processes and hosts.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from ..analysis import fixed_resource_efficiency
from ..apps.hpccg import HpccgConfig
from ..api import sweep as _sweep
from ..scenarios import (FixedFailures, PoissonFailures, Scenario,
                         register_scenario)

DESCRIPTION = ("Extensions — crash timing, replication degree, "
               "seeded Poisson failures")

_FAILURE_CFG = HpccgConfig(nx=16, ny=16, nz=32, max_iter=6,
                           intra_kernels=frozenset({"ddot", "spmv"}))

#: the registered seeded-failure demo workload: HPCCG under Poisson
#: crash arrivals (a few failures land mid-run), same seed everywhere
POISSON_DEMO = PoissonFailures(rate=1500.0, seed=2015, horizon=2e-3)
_POISSON_CFG = HpccgConfig(nx=16, ny=16, nz=16, max_iter=6,
                           intra_kernels=frozenset({"ddot", "spmv"}))


@dataclasses.dataclass
class FailureSweepRow:
    crash_fraction: float     #: crash time / clean intra run time
    time: float
    efficiency: float
    reexecuted: int


def _failure_refs(n_logical: int,
                  config: HpccgConfig) -> _t.List[Scenario]:
    """The two reference scenarios: native at matched resources, and
    the clean (no-crash) intra run."""
    native_cfg = dataclasses.replace(config, nz=config.nz // 2)
    return [
        Scenario(app="hpccg", config=native_cfg, n_logical=2 * n_logical,
                 mode="native"),
        Scenario(app="hpccg", config=config, n_logical=n_logical,
                 mode="intra"),
    ]


def failure_time_sweep(
        fractions: _t.Sequence[float] = (0.1, 0.5, 0.9),
        n_logical: int = 4,
        config: _t.Optional[HpccgConfig] = None) -> _t.List[FailureSweepRow]:
    """HPCCG intra efficiency when one replica of rank 0 crashes at the
    given fraction of the clean run's duration.  Includes a no-crash
    row (fraction=None encoded as -1); an SDR reference is implied by
    the 0.5 floor."""
    config = config or _FAILURE_CFG
    # reference times: the native run and the clean (no-crash) intra run
    # are independent — one two-point sweep
    refs = _failure_refs(n_logical, config)
    native_run, clean = _sweep(refs)
    t_clean = clean.wall_time
    # crash times depend on t_clean, so the crash batch is a second
    # sweep: the clean scenario with a FixedFailures schedule per point
    clean_scenario = refs[1]
    crash_runs = _sweep([
        clean_scenario.with_failures(
            FixedFailures(((0, 1, frac * t_clean),)))
        for frac in fractions])
    rows = [FailureSweepRow(-1.0, t_clean,
                            fixed_resource_efficiency(
                                native_run.wall_time, t_clean), 0)]
    for frac, run in zip(fractions, crash_runs):
        reexec = int(round(run.intra.get("tasks_reexecuted", 0.0)
                           * n_logical))
        rows.append(FailureSweepRow(
            frac, run.wall_time,
            fixed_resource_efficiency(native_run.wall_time,
                                      run.wall_time),
            reexec))
    return rows


@dataclasses.dataclass
class DegreeSweepRow:
    degree: int
    time: float
    efficiency: float
    update_bytes: float


def _degree_scenarios(degrees: _t.Sequence[int],
                      n_logical: int = 4) -> _t.List[Scenario]:
    base = HpccgConfig(nx=16, ny=16, nz=8, max_iter=6,
                       intra_kernels=frozenset({"ddot", "spmv"}))
    points = [Scenario(app="hpccg", config=base, n_logical=n_logical,
                       mode="native")]
    for d in degrees:
        cfg = dataclasses.replace(base, nz=base.nz * d)
        if d == 1:
            points.append(Scenario(app="hpccg", config=cfg,
                                   n_logical=n_logical, mode="native"))
        else:
            points.append(Scenario(app="hpccg", config=cfg,
                                   n_logical=n_logical, mode="intra",
                                   degree=d))
    return points


def degree_sweep(degrees: _t.Sequence[int] = (1, 2, 3),
                 n_logical: int = 4) -> _t.List[DegreeSweepRow]:
    """HPCCG intra efficiency vs replication degree, at fixed physical
    resources: degree d uses d replicas per logical rank, each with the
    per-logical problem scaled by d (the Figure 5 convention extended
    beyond 2)."""
    runs = _sweep(_degree_scenarios(degrees, n_logical))
    native = runs[0]
    rows = []
    for d, run in zip(degrees, runs[1:]):
        update_bytes = (0.0 if d == 1
                        else run.intra.get("update_bytes_sent", 0.0))
        rows.append(DegreeSweepRow(
            d, run.wall_time,
            fixed_resource_efficiency(native.wall_time, run.wall_time),
            update_bytes))
    return rows


@dataclasses.dataclass
class PoissonRow:
    mode: str
    time: float
    crashes: int
    #: materialized crash times (identical for identical seeds)
    crash_times: _t.Tuple[float, ...]


def _poisson_scenarios(n_logical: int = 4) -> _t.List[Scenario]:
    return [Scenario(app="hpccg", config=_POISSON_CFG,
                     n_logical=n_logical, mode=mode,
                     failures=POISSON_DEMO)
            for mode in ("native", "sdr", "intra")]


def poisson_failure_rows(n_logical: int = 4) -> _t.List[PoissonRow]:
    """The registered Poisson workload in all three modes.

    Native has no replicas, so the schedule is vacuous there (a
    crash-stop failure of an unreplicated rank is fatal — the paper's
    motivation); the replicated modes absorb the same seeded crashes
    deterministically.
    """
    runs = _sweep(_poisson_scenarios(n_logical))
    return [PoissonRow(run.mode, run.wall_time, len(run.crashes),
                       tuple(ev.time for ev in run.crashes))
            for run in runs]


def _register_defaults() -> None:
    native_ref, clean = _failure_refs(4, _FAILURE_CFG)
    register_scenario("ext:crash-timing:native", native_ref,
                      "Crash-timing extension — native reference")
    register_scenario("ext:crash-timing:clean", clean,
                      "Crash-timing extension — failure-free intra run")
    for d, s in zip((1, 2, 3), _degree_scenarios((1, 2, 3))[1:]):
        register_scenario(
            f"ext:degree:d{d}", s,
            f"Degree extension — HPCCG at replication degree {d}")
    for s in _poisson_scenarios():
        register_scenario(
            f"ext:poisson:{s.mode}", s,
            f"Seeded Poisson failure workload (rate "
            f"{POISSON_DEMO.rate:.0f}/s, seed {POISSON_DEMO.seed}) — "
            f"{s.mode} mode")


_register_defaults()
