"""Figure 6: application-level efficiency (AMG, GTC, MiniGhost).

Methodology (paper §V-D): constant problem, doubled resources — the
native run uses P physical processes, the replicated runs use the same
P *logical* ranks on 2P physical processes, so equal run time means 50%
efficiency and ``E = 0.5 · t_native / t_mode``.

Each result also reports the fraction of native runtime spent in the
parts of the code where intra-parallelization was applied ("sections"
vs "others" in the figure): 62% (6a), 42% (6b), 75% (6c), 10% (6d) in
the paper.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from ..analysis import doubled_resource_efficiency
from ..apps.amg import AmgConfig, amg_gmres_program, amg_pcg_program
from ..apps.gtc import GtcConfig, gtc_program
from ..apps.minighost import MiniGhostConfig, minighost_program
from .common import sweep_modes

#: timer regions that correspond to intra-parallelized code per app
SECTION_REGIONS = {
    "amg_pcg": ("spmv", "smoother_spmv", "ddot"),
    "amg_gmres": ("spmv", "smoother_spmv", "ddot"),
    "gtc": ("charge", "push"),
    "minighost": ("grid_sum",),
}


@dataclasses.dataclass
class Fig6Row:
    app: str
    mode: str
    physical_processes: int
    time: float
    efficiency: float
    #: fraction of native runtime in intra-parallelized regions
    sections_fraction: float


def _run_app(app: str, program: _t.Callable, n_logical: int,
             config: _t.Any) -> _t.List[Fig6Row]:
    native, sdr, intra = sweep_modes([
        (mode, program, n_logical, config, {})
        for mode in ("native", "sdr", "intra")])
    section_time = sum(native.timers.get(r, 0.0)
                       for r in SECTION_REGIONS[app])
    frac = section_time / native.wall_time if native.wall_time else 0.0
    rows = [Fig6Row(app, "Open MPI", n_logical, native.wall_time, 1.0,
                    frac)]
    for run, label in ((sdr, "SDR-MPI"), (intra, "intra")):
        rows.append(Fig6Row(
            app, label, 2 * n_logical, run.wall_time,
            doubled_resource_efficiency(native.wall_time, run.wall_time),
            frac))
    return rows


def fig6a(n_logical: int = 8,
          config: _t.Optional[AmgConfig] = None) -> _t.List[Fig6Row]:
    """AMG2013, 27-point stencil, PCG solver."""
    config = config or AmgConfig(nx=16, ny=16, nz=16, max_iter=4)
    return _run_app("amg_pcg", amg_pcg_program, n_logical, config)


def fig6b(n_logical: int = 8,
          config: _t.Optional[AmgConfig] = None) -> _t.List[Fig6Row]:
    """AMG2013, 7-point stencil, GMRES solver."""
    config = config or AmgConfig(nx=16, ny=16, nz=16, max_iter=8,
                                 restart=8)
    return _run_app("amg_gmres", amg_gmres_program, n_logical, config)


def fig6c(n_logical: int = 8,
          config: _t.Optional[GtcConfig] = None) -> _t.List[Fig6Row]:
    """GTC particle-in-cell (charge + push intra-parallelized)."""
    config = config or GtcConfig(particles_per_rank=65536,
                                 cells_per_rank=64, steps=3)
    return _run_app("gtc", gtc_program, n_logical, config)


def fig6d(n_logical: int = 8,
          config: _t.Optional[MiniGhostConfig] = None) -> _t.List[Fig6Row]:
    """MiniGhost 27-point stencil (only the grid summation is
    intra-parallelizable)."""
    config = config or MiniGhostConfig(nx=32, ny=32, nz=16, steps=3)
    return _run_app("minighost", minighost_program, n_logical, config)
