"""Figure 6: application-level efficiency (AMG, GTC, MiniGhost).

Methodology (paper §V-D): constant problem, doubled resources — the
native run uses P physical processes, the replicated runs use the same
P *logical* ranks on 2P physical processes, so equal run time means 50%
efficiency and ``E = 0.5 · t_native / t_mode``.

Each result also reports the fraction of native runtime spent in the
parts of the code where intra-parallelization was applied ("sections"
vs "others" in the figure): 62% (6a), 42% (6b), 75% (6c), 10% (6d) in
the paper.

The default points are registered as ``fig6<x>:<mode>``.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from ..analysis import doubled_resource_efficiency
from ..api import sweep as _sweep
from ..apps.amg import AmgConfig
from ..apps.gtc import GtcConfig
from ..apps.minighost import MiniGhostConfig
from ..scenarios import Scenario, baseline_overrides, register_scenario

#: timer regions that correspond to intra-parallelized code per app
SECTION_REGIONS = {
    "amg_pcg": ("spmv", "smoother_spmv", "ddot"),
    "amg_gmres": ("spmv", "smoother_spmv", "ddot"),
    "gtc": ("charge", "push"),
    "minighost": ("grid_sum",),
}

DESCRIPTIONS = {
    "fig6a": "Figure 6a — AMG2013 PCG, 27-point stencil",
    "fig6b": "Figure 6b — AMG2013 GMRES, 7-point stencil",
    "fig6c": "Figure 6c — GTC particle-in-cell",
    "fig6d": "Figure 6d — MiniGhost 27-point stencil",
}


@dataclasses.dataclass
class Fig6Row:
    app: str
    mode: str
    physical_processes: int
    time: float
    efficiency: float
    #: fraction of native runtime in intra-parallelized regions
    sections_fraction: float


def _app_scenarios(app: str, n_logical: int, config: _t.Any,
                   overrides: _t.Optional[_t.Mapping[str, _t.Any]]
                   ) -> _t.List[Scenario]:
    ov = dict(overrides or {})
    bov = baseline_overrides(ov)
    return [
        Scenario(app=app, config=config, n_logical=n_logical, mode=mode)
        .with_overrides(bov if mode == "native" else ov)
        for mode in ("native", "sdr", "intra")]


def _run_app(app: str, n_logical: int, config: _t.Any,
             overrides: _t.Optional[_t.Mapping[str, _t.Any]] = None
             ) -> _t.List[Fig6Row]:
    native, sdr, intra = _sweep(
        _app_scenarios(app, n_logical, config, overrides))
    section_time = sum(native.timers.get(r, 0.0)
                       for r in SECTION_REGIONS[app])
    frac = section_time / native.wall_time if native.wall_time else 0.0
    rows = [Fig6Row(app, "Open MPI", n_logical, native.wall_time, 1.0,
                    frac)]
    for run, label in ((sdr, "SDR-MPI"), (intra, "intra")):
        rows.append(Fig6Row(
            app, label, 2 * n_logical, run.wall_time,
            doubled_resource_efficiency(native.wall_time, run.wall_time),
            frac))
    return rows


_DEFAULTS: _t.Dict[str, _t.Tuple[str, _t.Any]] = {
    "fig6a": ("amg_pcg", AmgConfig(nx=16, ny=16, nz=16, max_iter=4)),
    "fig6b": ("amg_gmres", AmgConfig(nx=16, ny=16, nz=16, max_iter=8,
                                     restart=8)),
    "fig6c": ("gtc", GtcConfig(particles_per_rank=65536,
                               cells_per_rank=64, steps=3)),
    "fig6d": ("minighost", MiniGhostConfig(nx=32, ny=32, nz=16, steps=3)),
}


def fig6a(n_logical: int = 8, config: _t.Optional[AmgConfig] = None,
          overrides: _t.Optional[_t.Mapping[str, _t.Any]] = None
          ) -> _t.List[Fig6Row]:
    """AMG2013, 27-point stencil, PCG solver."""
    return _run_app("amg_pcg", n_logical,
                    config or _DEFAULTS["fig6a"][1], overrides)


def fig6b(n_logical: int = 8, config: _t.Optional[AmgConfig] = None,
          overrides: _t.Optional[_t.Mapping[str, _t.Any]] = None
          ) -> _t.List[Fig6Row]:
    """AMG2013, 7-point stencil, GMRES solver."""
    return _run_app("amg_gmres", n_logical,
                    config or _DEFAULTS["fig6b"][1], overrides)


def fig6c(n_logical: int = 8, config: _t.Optional[GtcConfig] = None,
          overrides: _t.Optional[_t.Mapping[str, _t.Any]] = None
          ) -> _t.List[Fig6Row]:
    """GTC particle-in-cell (charge + push intra-parallelized)."""
    return _run_app("gtc", n_logical,
                    config or _DEFAULTS["fig6c"][1], overrides)


def fig6d(n_logical: int = 8,
          config: _t.Optional[MiniGhostConfig] = None,
          overrides: _t.Optional[_t.Mapping[str, _t.Any]] = None
          ) -> _t.List[Fig6Row]:
    """MiniGhost 27-point stencil (only the grid summation is
    intra-parallelizable)."""
    return _run_app("minighost", n_logical,
                    config or _DEFAULTS["fig6d"][1], overrides)


def _register_defaults() -> None:
    for fig, (app, config) in _DEFAULTS.items():
        for s in _app_scenarios(app, 8, config, None):
            register_scenario(
                f"{fig}:{s.mode}", s,
                f"{DESCRIPTIONS[fig]} point — {s.mode} mode")


_register_defaults()
