"""Ablation studies for the design choices DESIGN.md calls out.

1. **Task granularity** (§V-B: "8 tasks per section ... Having fewer
   tasks reduces the opportunities of overlapping updates transfer and
   computation.  Having more tasks can create overhead because it
   increases synchronization between replicas.")
2. **Scheduler policy** (§V-A: static block vs alternatives under load
   imbalance).
3. **Replica placement** (§VI: neighbouring nodes minimise network
   crossing; distant nodes lower correlated-failure risk).
4. **inout copy strategy** (§III-B2: copy-at-entry vs atomic updates
   "have a similar cost").
5. **MiniGhost stencil** (§V-D: why the stencil was *not*
   intra-parallelized).

Each study is a grid of registered scenarios (``ablation:*``).
"""

from __future__ import annotations

import dataclasses
import typing as _t

from ..analysis import doubled_resource_efficiency, fixed_resource_efficiency
from ..apps.gtc import GtcConfig
from ..apps.hpccg import KernelBenchConfig
from ..apps.minighost import MiniGhostConfig
from ..intra import CopyStrategy, Tag
from ..api import run as _run, sweep as _sweep
from ..netmodel import GRID5000_NETWORK
from ..scenarios import Scenario, register_scenario

DESCRIPTION = "Ablations — granularity, scheduler, placement, copies"


@dataclasses.dataclass
class AblationRow:
    setting: str
    value: _t.Any
    time: float
    efficiency: float


def granularity_sweep(task_counts: _t.Sequence[int] = (1, 2, 4, 8, 16,
                                                       32, 64),
                      n_logical: int = 8) -> _t.List[AblationRow]:
    """Intra efficiency of the sparsemv kernel vs tasks per section."""
    runs = _sweep(_granularity_scenarios(task_counts, n_logical))
    t_native = runs[0].timers["spmv"]
    rows = []
    for nt, intra in zip(task_counts, runs[1:]):
        t = intra.timers["spmv"]
        rows.append(AblationRow("tasks_per_section", nt, t,
                                fixed_resource_efficiency(t_native, t)))
    return rows


def _granularity_scenarios(task_counts: _t.Sequence[int],
                           n_logical: int = 8) -> _t.List[Scenario]:
    base = KernelBenchConfig(nx=32, ny=32, nz=16, reps=3,
                             kernels=("spmv",))
    points = [Scenario(app="hpccg_kernels", config=base,
                       n_logical=n_logical, mode="native")]
    points += [
        Scenario(app="hpccg_kernels",
                 config=dataclasses.replace(base.with_doubled_z(),
                                            tasks_per_section=nt),
                 n_logical=n_logical, mode="intra")
        for nt in task_counts]
    return points


def imbalance_program(ctx, comm, n_tasks=8):
    """Synthetic section with strongly imbalanced task costs (task i
    costs ∝ i+1): exposes the scheduler policies' balancing quality."""
    import numpy as np
    outs = [np.zeros(1) for _ in range(n_tasks)]
    rt = ctx.intra
    rt.section_begin()
    tid = rt.task_register(
        lambda c, o: o.fill(float(c[0])), [Tag.IN, Tag.OUT],
        cost=lambda c, o: (float(c[0]) * 1e6, 0.0))
    for i in range(n_tasks):
        rt.task_launch(tid, [np.array([i + 1.0]), outs[i]])
    yield from rt.section_end()
    return ctx.now


def _scheduler_scenarios(n_tasks: int = 8) -> _t.List[Scenario]:
    """One single-logical-rank intra scenario per scheduling policy,
    running the imbalanced synthetic section."""
    return [
        Scenario(app="repro.experiments.ablations:imbalance_program",
                 config=n_tasks, n_logical=1, mode="intra",
                 scheduler=name)
        for name in ("static-block", "round-robin", "cost-balanced")]


def scheduler_comparison(n_tasks: int = 8) -> _t.List[AblationRow]:
    """Section completion time under each scheduling policy for the
    imbalanced workload (lower is better)."""
    scenarios = _scheduler_scenarios(n_tasks)
    runs = _sweep(scenarios)
    rows = [AblationRow("scheduler", s.scheduler, run.wall_time, 0.0)
            for s, run in zip(scenarios, runs)]
    # efficiency relative to the best policy
    best = min(r.time for r in rows)
    for r in rows:
        r.efficiency = best / r.time
    return rows


def _placement_scenarios(spreads: _t.Sequence[int],
                         n_logical: int = 8) -> _t.List[Scenario]:
    hoppy = dataclasses.replace(GRID5000_NETWORK, hop_latency=2e-6)
    base = KernelBenchConfig(nx=32, ny=32, nz=16, reps=3,
                             kernels=("ddot",))
    points = [Scenario(app="hpccg_kernels", config=base,
                       n_logical=n_logical, mode="native", network=hoppy,
                       distance_model="linear")]
    points += [Scenario(app="hpccg_kernels",
                        config=base.with_doubled_z(),
                        n_logical=n_logical, mode="intra", network=hoppy,
                        distance_model="linear", spread=spread)
               for spread in spreads]
    return points


def placement_sweep(spreads: _t.Sequence[int] = (1, 4, 16),
                    n_logical: int = 8) -> _t.List[AblationRow]:
    """Intra kernel efficiency vs replica distance on a linear topology
    with per-hop latency (§VI's contention/correlation trade-off)."""
    runs = _sweep(_placement_scenarios(spreads, n_logical))
    t_native = runs[0].timers["ddot"]
    rows = []
    for spread, intra in zip(spreads, runs[1:]):
        t = intra.timers["ddot"]
        rows.append(AblationRow("replica_spread", spread, t,
                                fixed_resource_efficiency(t_native, t)))
    return rows


_COPY_STRATEGIES = (CopyStrategy.LAZY, CopyStrategy.EAGER,
                    CopyStrategy.ATOMIC)


def _copy_strategy_scenarios(n_logical: int = 4) -> _t.List[Scenario]:
    cfg = GtcConfig(particles_per_rank=16384, cells_per_rank=64, steps=3)
    return [Scenario(app="gtc", config=cfg, n_logical=n_logical,
                     mode="intra", copy_strategy=strategy)
            for strategy in _COPY_STRATEGIES]


def copy_strategy_comparison(n_logical: int = 4) -> _t.List[AblationRow]:
    """GTC wall time under the three inout-protection strategies —
    §III-B2 predicts near-parity ("a similar cost")."""
    runs = _sweep(_copy_strategy_scenarios(n_logical))
    rows = [AblationRow("copy_strategy", strategy.value, run.wall_time,
                        0.0)
            for strategy, run in zip(_COPY_STRATEGIES, runs)]
    best = min(r.time for r in rows)
    for r in rows:
        r.efficiency = best / r.time
    return rows


def _minighost_scenarios(n_logical: int = 8) -> _t.List[Scenario]:
    base = MiniGhostConfig(nx=32, ny=32, nz=16, steps=3)
    points = [Scenario(app="minighost", config=base,
                       n_logical=n_logical, mode="native")]
    points += [
        Scenario(app="minighost",
                 config=dataclasses.replace(base,
                                            stencil_in_section=stencil_in),
                 n_logical=n_logical, mode="intra")
        for stencil_in in (False, True)]
    return points


def minighost_stencil_ablation(n_logical: int = 8) -> _t.List[AblationRow]:
    """Put MiniGhost's stencil *into* sections and show it does not pay
    (§V-D: "the performance with intra-parallelization were around the
    same as without intra-parallelization")."""
    runs = _sweep(_minighost_scenarios(n_logical))
    native = runs[0]
    rows = []
    for stencil_in, intra in zip((False, True), runs[1:]):
        rows.append(AblationRow(
            "stencil_in_section", stencil_in, intra.wall_time,
            doubled_resource_efficiency(native.wall_time,
                                        intra.wall_time)))
    return rows


def inout_overhead(n_logical: int = 4) -> float:
    """Extra-copy overhead on GTC's affected tasks (paper: ≈ 6%).

    Returns copy time as a fraction of section task-compute time."""
    cfg = GtcConfig(particles_per_rank=32768, cells_per_rank=64, steps=3)
    run = _run(Scenario(app="gtc", config=cfg,
               n_logical=n_logical, mode="intra",
               copy_strategy=CopyStrategy.LAZY))
    compute = run.intra.get("task_compute_time", 0.0)
    copy = run.intra.get("copy_time", 0.0)
    return copy / compute if compute else 0.0


def _register_defaults() -> None:
    gran = _granularity_scenarios((1, 2, 4, 8, 16, 32, 64))
    register_scenario("ablation:granularity:native", gran[0],
                      "Granularity ablation — sparsemv native reference")
    for nt, s in zip((1, 2, 4, 8, 16, 32, 64), gran[1:]):
        register_scenario(
            f"ablation:granularity:nt{nt}", s,
            f"Granularity ablation — sparsemv intra, {nt} tasks/section")
    for s in _scheduler_scenarios():
        register_scenario(
            f"ablation:scheduler:{s.scheduler}", s,
            f"Scheduler ablation — imbalanced section, {s.scheduler}")
    place = _placement_scenarios((1, 4, 16))
    register_scenario("ablation:placement:native", place[0],
                      "Placement ablation — ddot native reference "
                      "(linear topology)")
    for spread, s in zip((1, 4, 16), place[1:]):
        register_scenario(
            f"ablation:placement:spread{spread}", s,
            f"Placement ablation — ddot intra, replica spread {spread}")
    for strategy, s in zip(_COPY_STRATEGIES, _copy_strategy_scenarios()):
        register_scenario(
            f"ablation:copy:{strategy.value}", s,
            f"inout-protection ablation — GTC intra, {strategy.value} "
            f"copies")
    mg = _minighost_scenarios()
    register_scenario("ablation:minighost-stencil:native", mg[0],
                      "MiniGhost stencil ablation — native reference")
    for stencil_in, s in zip((False, True), mg[1:]):
        where = "in" if stencil_in else "out"
        register_scenario(
            f"ablation:minighost-stencil:{where}", s,
            f"MiniGhost stencil ablation — intra, stencil "
            f"{'inside' if stencil_in else 'outside'} sections")


_register_defaults()
