"""Ablation studies for the design choices DESIGN.md calls out.

1. **Task granularity** (§V-B: "8 tasks per section ... Having fewer
   tasks reduces the opportunities of overlapping updates transfer and
   computation.  Having more tasks can create overhead because it
   increases synchronization between replicas.")
2. **Scheduler policy** (§V-A: static block vs alternatives under load
   imbalance).
3. **Replica placement** (§VI: neighbouring nodes minimise network
   crossing; distant nodes lower correlated-failure risk).
4. **inout copy strategy** (§III-B2: copy-at-entry vs atomic updates
   "have a similar cost").
5. **MiniGhost stencil** (§V-D: why the stencil was *not*
   intra-parallelized).
"""

from __future__ import annotations

import dataclasses
import typing as _t

from ..analysis import doubled_resource_efficiency, fixed_resource_efficiency
from ..apps.gtc import GtcConfig, gtc_program
from ..apps.hpccg import KernelBenchConfig, hpccg_kernel_bench
from ..apps.minighost import MiniGhostConfig, minighost_program
from ..intra import (CopyStrategy, Tag, launch_intra_job, make_scheduler)
from ..netmodel import GRID5000_NETWORK
from ..perf import run_sweep
from .common import run_mode, sweep_modes


@dataclasses.dataclass
class AblationRow:
    setting: str
    value: _t.Any
    time: float
    efficiency: float


def granularity_sweep(task_counts: _t.Sequence[int] = (1, 2, 4, 8, 16,
                                                       32, 64),
                      n_logical: int = 8) -> _t.List[AblationRow]:
    """Intra efficiency of the sparsemv kernel vs tasks per section."""
    base = KernelBenchConfig(nx=32, ny=32, nz=16, reps=3,
                             kernels=("spmv",))
    points = [("native", hpccg_kernel_bench, n_logical, base, {})]
    points += [("intra", hpccg_kernel_bench, n_logical,
                dataclasses.replace(base.with_doubled_z(),
                                    tasks_per_section=nt), {})
               for nt in task_counts]
    runs = sweep_modes(points)
    t_native = runs[0].timers["spmv"]
    rows = []
    for nt, intra in zip(task_counts, runs[1:]):
        t = intra.timers["spmv"]
        rows.append(AblationRow("tasks_per_section", nt, t,
                                fixed_resource_efficiency(t_native, t)))
    return rows


def imbalance_program(ctx, comm, n_tasks=8):
    """Synthetic section with strongly imbalanced task costs (task i
    costs ∝ i+1): exposes the scheduler policies' balancing quality."""
    import numpy as np
    outs = [np.zeros(1) for _ in range(n_tasks)]
    rt = ctx.intra
    rt.section_begin()
    tid = rt.task_register(
        lambda c, o: o.fill(float(c[0])), [Tag.IN, Tag.OUT],
        cost=lambda c, o: (float(c[0]) * 1e6, 0.0))
    for i in range(n_tasks):
        rt.task_launch(tid, [np.array([i + 1.0]), outs[i]])
    yield from rt.section_end()
    return ctx.now


def _scheduler_point(point: _t.Tuple[str, int]) -> float:
    """Sweep point: section completion time under one scheduling policy
    for the imbalanced workload."""
    from ..mpi import MpiWorld
    from ..netmodel import Cluster, GRID5000_MACHINE

    name, n_tasks = point
    world = MpiWorld(Cluster(2, GRID5000_MACHINE), GRID5000_NETWORK)
    job = launch_intra_job(world, imbalance_program, 1,
                           scheduler=make_scheduler(name),
                           kwargs=dict(n_tasks=n_tasks))
    world.run()
    return max(max(row) for row in job.results())


def scheduler_comparison(n_tasks: int = 8) -> _t.List[AblationRow]:
    """Section completion time under each scheduling policy for the
    imbalanced workload (lower is better)."""
    names = ("static-block", "round-robin", "cost-balanced")
    times = run_sweep([(name, n_tasks) for name in names],
                      _scheduler_point, tag="scheduler_comparison")
    rows = [AblationRow("scheduler", name, t, 0.0)
            for name, t in zip(names, times)]
    # efficiency relative to the best policy
    best = min(r.time for r in rows)
    for r in rows:
        r.efficiency = best / r.time
    return rows


def placement_sweep(spreads: _t.Sequence[int] = (1, 4, 16),
                    n_logical: int = 8) -> _t.List[AblationRow]:
    """Intra kernel efficiency vs replica distance on a linear topology
    with per-hop latency (§VI's contention/correlation trade-off)."""
    hoppy = dataclasses.replace(GRID5000_NETWORK, hop_latency=2e-6)
    base = KernelBenchConfig(nx=32, ny=32, nz=16, reps=3,
                             kernels=("ddot",))
    points = [("native", hpccg_kernel_bench, n_logical, base,
               dict(netspec=hoppy, distance_model="linear"))]
    points += [("intra", hpccg_kernel_bench, n_logical,
                base.with_doubled_z(),
                dict(netspec=hoppy, distance_model="linear",
                     spread=spread))
               for spread in spreads]
    runs = sweep_modes(points)
    t_native = runs[0].timers["ddot"]
    rows = []
    for spread, intra in zip(spreads, runs[1:]):
        t = intra.timers["ddot"]
        rows.append(AblationRow("replica_spread", spread, t,
                                fixed_resource_efficiency(t_native, t)))
    return rows


def copy_strategy_comparison(n_logical: int = 4) -> _t.List[AblationRow]:
    """GTC wall time under the three inout-protection strategies —
    §III-B2 predicts near-parity ("a similar cost")."""
    cfg = GtcConfig(particles_per_rank=16384, cells_per_rank=64, steps=3)
    strategies = (CopyStrategy.LAZY, CopyStrategy.EAGER,
                  CopyStrategy.ATOMIC)
    runs = sweep_modes([("intra", gtc_program, n_logical, cfg,
                         dict(copy_strategy=strategy))
                        for strategy in strategies])
    rows = [AblationRow("copy_strategy", strategy.value, run.wall_time,
                        0.0)
            for strategy, run in zip(strategies, runs)]
    best = min(r.time for r in rows)
    for r in rows:
        r.efficiency = best / r.time
    return rows


def minighost_stencil_ablation(n_logical: int = 8) -> _t.List[AblationRow]:
    """Put MiniGhost's stencil *into* sections and show it does not pay
    (§V-D: "the performance with intra-parallelization were around the
    same as without intra-parallelization")."""
    base = MiniGhostConfig(nx=32, ny=32, nz=16, steps=3)
    points = [("native", minighost_program, n_logical, base, {})]
    points += [("intra", minighost_program, n_logical,
                dataclasses.replace(base, stencil_in_section=stencil_in),
                {})
               for stencil_in in (False, True)]
    runs = sweep_modes(points)
    native = runs[0]
    rows = []
    for stencil_in, intra in zip((False, True), runs[1:]):
        rows.append(AblationRow(
            "stencil_in_section", stencil_in, intra.wall_time,
            doubled_resource_efficiency(native.wall_time,
                                        intra.wall_time)))
    return rows


def inout_overhead(n_logical: int = 4) -> float:
    """Extra-copy overhead on GTC's affected tasks (paper: ≈ 6%).

    Returns copy time as a fraction of section task-compute time."""
    cfg = GtcConfig(particles_per_rank=32768, cells_per_rank=64, steps=3)
    run = run_mode("intra", gtc_program, n_logical, cfg,
                   copy_strategy=CopyStrategy.LAZY)
    compute = run.intra.get("task_compute_time", 0.0)
    copy = run.intra.get("copy_time", 0.0)
    return copy / compute if compute else 0.0
