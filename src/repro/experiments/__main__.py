"""Regenerate the paper's tables — and run any registered scenario —
from the command line.

Usage::

    python -m repro.experiments                   # everything (~1 min)
    python -m repro.experiments fig5a fig6c       # selected figures
    python -m repro.experiments run fig5b --set degree=3 --set mode=intra
    python -m repro.experiments fig5b --format csv     # table rows as CSV
    python -m repro.experiments run ext:poisson:intra --format json
    python -m repro.experiments --workers 4       # parallel sweep points
    python -m repro.experiments --no-cache        # force recomputation
    python -m repro.experiments list              # everything available
    python -m repro.experiments list 'fig5b*' --tag ext
    python -m repro.experiments cache stats       # result-cache admin
    python -m repro.experiments cache migrate --to sqlite

Names are figure experiments (``fig5b``, ``ablations``, ...) or
registered scenario names (``fig5b:p16:intra``, ``example:gtc:sdr``,
...); the optional leading ``run`` keyword is cosmetic.  ``--set
key=value`` overrides scenario fields (``degree=3``, ``mode=intra``,
``config.nx=8``, ``failures={"kind": "poisson", "rate": 400, "seed": 1,
"horizon": 0.005}``) on every selected experiment/scenario; figure
baselines keep their reference mode.  Unknown names exit non-zero with
a close-match suggestion.

``list`` filters with shell globs (``list 'fig5a*'``) and/or ``--tag
NAMESPACE`` (the part before the first colon: ``--tag ext``,
``--tag example``); output is sorted and deterministic, and a
pattern/tag matching nothing exits non-zero.  ``--format json|csv``
turns runs machine-readable: experiment names render their table rows
(flat records tagged with experiment + table), scenario names a
:class:`repro.results.ResultSet` (``csv`` is run-only).

Tables print to stdout in the same layout the benchmark harness saves
under ``benchmarks/_results/``.  Sweep points fan out over ``--workers``
processes and results are memoized under ``.perf_cache/`` keyed by
scenario hashes (disable with ``--no-cache``; delete the directory or
bump ``repro.perf.CACHE_VERSION`` after model changes).
"""

from __future__ import annotations

import argparse
import csv
import dataclasses
import fnmatch
import io
import json
import sys
import typing as _t

from ..analysis import format_table
from ..api import sweep as api_sweep
from ..perf import configure
from ..results import ResultSet
from ..scenarios import (GRID_PREFIX, Scenario, get_entry, grid_entries,
                         parse_override, scenario_entries,
                         scenario_names, suggest_names,
                         UnknownScenarioError)
from . import (ccr_vs_replication, copy_strategy_comparison, degree_sweep,
               failure_time_sweep, fig5a, fig5b, fig6a, fig6b, fig6c,
               fig6d, granularity_sweep, minighost_stencil_ablation,
               placement_sweep, poisson_failure_rows,
               scheduler_comparison)
from . import background as _bg
from .ablations import DESCRIPTION as _ABLATIONS_DESC
from .extensions import DESCRIPTION as _EXTENSIONS_DESC
from .fig5 import DESCRIPTION_5A, DESCRIPTION_5B
from .fig6 import DESCRIPTIONS as _FIG6_DESCS

Overrides = _t.Mapping[str, _t.Any]


def _fig5a(overrides: Overrides) -> str:
    rows = fig5a(overrides=overrides)
    return format_table(
        ["kernel", "mode", "time (ms)", "normalized", "efficiency",
         "exposed updates (ms)"],
        [[r.kernel, r.mode, r.time * 1e3, r.normalized, r.efficiency,
          r.exposed_update_time * 1e3] for r in rows],
        title="Figure 5a — HPCCG kernels")


def _fig5b(overrides: Overrides) -> str:
    rows = fig5b(overrides=overrides)
    return format_table(
        ["physical procs", "mode", "time (ms)", "efficiency"],
        [[r.physical_processes, r.mode, r.time * 1e3, r.efficiency]
         for r in rows],
        title="Figure 5b — HPCCG weak scaling")


def _fig6(fn, label: str):
    def render(overrides: Overrides) -> str:
        rows = fn(overrides=overrides)
        return format_table(
            ["app", "mode", "procs", "time (ms)", "efficiency",
             "sections frac"],
            [[r.app, r.mode, r.physical_processes, r.time * 1e3,
              r.efficiency, r.sections_fraction] for r in rows],
            title=label)
    return render


def _ablations(overrides: Overrides) -> str:
    if overrides:
        raise ValueError("--set overrides are not supported for the "
                         "ablation batch; run its scenarios "
                         "individually (see --list)")
    parts = []
    parts.append(format_table(
        ["tasks/section", "intra efficiency"],
        [[r.value, r.efficiency] for r in granularity_sweep()],
        title="Ablation — task granularity (sparsemv)"))
    parts.append(format_table(
        ["scheduler", "time (ms)", "relative"],
        [[r.value, r.time * 1e3, r.efficiency]
         for r in scheduler_comparison()],
        title="Ablation — scheduler under imbalance"))
    parts.append(format_table(
        ["replica spread", "efficiency"],
        [[r.value, r.efficiency] for r in placement_sweep()],
        title="Ablation — replica placement"))
    parts.append(format_table(
        ["copy strategy", "time (ms)", "relative"],
        [[r.value, r.time * 1e3, r.efficiency]
         for r in copy_strategy_comparison()],
        title="Ablation — inout protection strategy"))
    parts.append(format_table(
        ["stencil in section", "efficiency"],
        [[r.value, r.efficiency]
         for r in minighost_stencil_ablation()],
        title="Ablation — MiniGhost stencil in sections"))
    return "\n\n".join(parts)


def _background(overrides: Overrides) -> str:
    rows = ccr_vs_replication(**_bg.apply_overrides(overrides))
    return format_table(
        ["processes", "system MTBF (h)", "cCR", "replication"],
        [[r.n_procs, r.system_mtbf_hours, r.ccr_efficiency,
          r.replication_efficiency] for r in rows],
        title="Background — cCR vs replication (§II)")


def _extensions(overrides: Overrides) -> str:
    if overrides:
        raise ValueError("--set overrides are not supported for the "
                         "extension batch; run its scenarios "
                         "individually (see --list)")
    parts = []
    parts.append(format_table(
        ["crash at", "time (ms)", "efficiency", "re-executed"],
        [["none" if r.crash_fraction < 0 else r.crash_fraction,
          r.time * 1e3, r.efficiency, r.reexecuted]
         for r in failure_time_sweep()],
        title="Extension — efficiency vs crash time"))
    parts.append(format_table(
        ["degree", "time (ms)", "efficiency", "update KB"],
        [[r.degree, r.time * 1e3, r.efficiency, r.update_bytes / 1e3]
         for r in degree_sweep()],
        title="Extension — replication degree sweep"))
    parts.append(format_table(
        ["mode", "time (ms)", "crashes", "crash times (ms)"],
        [[r.mode, r.time * 1e3, r.crashes,
          ", ".join(f"{t * 1e3:.3f}" for t in r.crash_times) or "-"]
         for r in poisson_failure_rows()],
        title="Extension — seeded Poisson failures (deterministic)"))
    return "\n\n".join(parts)


EXPERIMENTS: _t.Dict[str, _t.Tuple[_t.Callable[[Overrides], str], str]] = {
    "fig5a": (_fig5a, DESCRIPTION_5A),
    "fig5b": (_fig5b, DESCRIPTION_5B),
    "fig6a": (_fig6(fig6a, "Figure 6a — AMG PCG 27pt"),
              _FIG6_DESCS["fig6a"]),
    "fig6b": (_fig6(fig6b, "Figure 6b — AMG GMRES 7pt"),
              _FIG6_DESCS["fig6b"]),
    "fig6c": (_fig6(fig6c, "Figure 6c — GTC"), _FIG6_DESCS["fig6c"]),
    "fig6d": (_fig6(fig6d, "Figure 6d — MiniGhost"),
              _FIG6_DESCS["fig6d"]),
    "ablations": (_ablations, _ABLATIONS_DESC),
    "background": (_background, _bg.DESCRIPTION),
    "extensions": (_extensions, _EXTENSIONS_DESC),
}


class _ListingError(ValueError):
    """A list pattern/tag that matched nothing (exit status 2)."""


def _grid_rows(patterns: _t.Sequence[str], tag: _t.Optional[str]
               ) -> _t.List[_t.Tuple[str, _t.Any, _t.Any]]:
    """Generated-grid listing rows surviving the filters, each
    ``("family", family, None)`` or ``("point", name, family)``.

    Families list as one O(1) summary row; a pattern that reaches
    *into* a family (contains ``/``) expands to the matching point
    names of that family — the only case that pays O(points), and only
    for the targeted family.
    """
    families = grid_entries()
    if tag is not None and tag != "grid":
        return []
    if not patterns:
        return [("family", f, None) for f in families]
    rows: _t.List[_t.Tuple[str, _t.Any, _t.Any]] = []
    for family in families:
        label = f"{GRID_PREFIX}{family.name}"
        summary_hit = any(
            "/" not in p and fnmatch.fnmatchcase(label, p)
            for p in patterns)
        if summary_hit:
            rows.append(("family", family, None))
        point_pats = [p for p in patterns
                      if "/" in p and fnmatch.fnmatchcase(
                          label, p.split("/", 1)[0])]
        if point_pats:
            rows += [("point", name, family)
                     for name in family.point_names()
                     if any(fnmatch.fnmatchcase(name, p)
                            for p in point_pats)]
    return rows


def _select_listing(patterns: _t.Sequence[str], tag: _t.Optional[str]
                    ) -> _t.Tuple[_t.List[str], _t.List[_t.Any],
                                  _t.List[_t.Tuple[str, _t.Any, _t.Any]]]:
    """(experiment names, scenario entries, grid rows) surviving the
    filters, in deterministic sorted order; raises
    :class:`_ListingError` on a pattern or tag matching nothing."""
    exp_names = sorted(EXPERIMENTS)
    entries = scenario_entries()   # sorted by name already
    grid_rows = _grid_rows(patterns, tag)
    if tag is not None:
        exp_names = [n for n in exp_names if n == tag]
        entries = [e for e in entries
                   if e.name.split(":", 1)[0] == tag]
        if not exp_names and not entries and not grid_rows:
            raise _ListingError(
                f"--tag {tag!r} matches no experiment, scenario or "
                f"grid namespace (see `list` with no filters)")
    for pattern in patterns:
        grids_hit = any(
            (kind == "family"
             and fnmatch.fnmatchcase(f"{GRID_PREFIX}{item.name}",
                                     pattern))
            or (kind == "point" and fnmatch.fnmatchcase(item, pattern))
            for kind, item, _f in grid_rows)
        if not (any(fnmatch.fnmatchcase(n, pattern) for n in exp_names)
                or any(fnmatch.fnmatchcase(e.name, pattern)
                       for e in entries)
                or grids_hit):
            raise _ListingError(
                f"pattern {pattern!r} matches no experiment, scenario "
                f"or grid name")
    if patterns:
        exp_names = [n for n in exp_names
                     if any(fnmatch.fnmatchcase(n, p) for p in patterns)]
        entries = [e for e in entries
                   if any(fnmatch.fnmatchcase(e.name, p)
                          for p in patterns)]
    return exp_names, entries, grid_rows


def _render_listing(patterns: _t.Sequence[str] = (),
                    tag: _t.Optional[str] = None,
                    fmt: str = "table") -> str:
    exp_names, entries, grid_rows = _select_listing(patterns, tag)
    if fmt == "json":
        payload = (
            [{"kind": "experiment", "name": n,
              "description": EXPERIMENTS[n][1]} for n in exp_names]
            + [{"kind": "scenario", "name": e.name,
                "description": e.description or e.scenario.summary(),
                "scenario": e.scenario.to_dict()} for e in entries])
        for kind, item, family in grid_rows:
            if kind == "family":
                payload.append(
                    {"kind": "grid", "name": f"{GRID_PREFIX}{item.name}",
                     "points": item.size,
                     "axes": {n: list(v) for n, v in item.axes},
                     "description": item.description})
            else:
                payload.append(
                    {"kind": "scenario", "name": item,
                     "description": f"{family.description} [generated]",
                     "scenario": get_entry(item).scenario.to_dict()})
        return json.dumps(payload, sort_keys=True, indent=2)
    lines = []
    if exp_names:
        lines.append("experiments:")
        lines += [f"  {n:24s} {EXPERIMENTS[n][1]}" for n in exp_names]
        lines.append("")
    lines.append(f"registered scenarios ({len(entries)}):")
    for entry in entries:
        desc = entry.description or entry.scenario.summary()
        lines.append(f"  {entry.name:32s} {desc}")
    families = [item for kind, item, _f in grid_rows if kind == "family"]
    points = [(item, family) for kind, item, family in grid_rows
              if kind == "point"]
    if families:
        lines.append("")
        lines.append(f"generated grids ({len(families)} families, "
                     f"{sum(f.size for f in families)} points; run "
                     f"one with `run grid:<family>/<axis>=<value>,...`):")
        for family in families:
            lines.append(f"  {family.summary():44s} "
                         f"{family.size:6d} points  "
                         f"{family.description}")
    if points:
        lines.append("")
        lines.append(f"generated grid points ({len(points)}):")
        for name, family in points:
            lines.append(f"  {name}")
    return "\n".join(lines)


def _run_single_scenario(name: str, overrides: Overrides) -> str:
    entry = get_entry(name)
    scenario = entry.scenario.with_overrides(overrides)
    # through the facade sweep, so --workers/--no-cache apply and the
    # result shares the scenario-hash cache with the figure sweeps
    run, = api_sweep([scenario])
    rows = [["mode", run.mode],
            ["wall time (ms)", run.wall_time * 1e3],
            ["crashes", len(run.crashes) or "-"]]
    rows += [[f"timer:{k} (ms)", v * 1e3]
             for k, v in sorted(run.timers.items())]
    return format_table(["field", "value"], rows,
                        title=f"{name} — {scenario.summary()}")


#: rows-providers behind ``--format json|csv`` on whole experiments:
#: experiment name -> list of (table label, row-dataclass list) pairs.
#: The same row objects feed the human tables, so both formats always
#: agree; composite experiments contribute one labelled block per table.
def _experiment_tables(name: str, overrides: Overrides
                       ) -> _t.List[_t.Tuple[str, _t.List[_t.Any]]]:
    if name == "fig5a":
        return [("fig5a", fig5a(overrides=overrides))]
    if name == "fig5b":
        return [("fig5b", fig5b(overrides=overrides))]
    if name in ("fig6a", "fig6b", "fig6c", "fig6d"):
        fn = {"fig6a": fig6a, "fig6b": fig6b, "fig6c": fig6c,
              "fig6d": fig6d}[name]
        return [(name, fn(overrides=overrides))]
    if name == "background":
        return [("ccr_vs_replication",
                 ccr_vs_replication(**_bg.apply_overrides(overrides)))]
    if name == "ablations":
        if overrides:
            raise ValueError("--set overrides are not supported for "
                             "the ablation batch; run its scenarios "
                             "individually (see --list)")
        return [("granularity", granularity_sweep()),
                ("scheduler", scheduler_comparison()),
                ("placement", placement_sweep()),
                ("copy_strategy", copy_strategy_comparison()),
                ("minighost_stencil", minighost_stencil_ablation())]
    if name == "extensions":
        if overrides:
            raise ValueError("--set overrides are not supported for "
                             "the extension batch; run its scenarios "
                             "individually (see --list)")
        return [("failure_time", failure_time_sweep()),
                ("degree", degree_sweep()),
                ("poisson", poisson_failure_rows())]
    raise KeyError(name)


def _experiment_records(name: str, overrides: Overrides
                        ) -> _t.List[_t.Dict[str, _t.Any]]:
    """One flat dict per experiment-table row, tagged with the
    experiment and table it belongs to."""
    records = []
    for table, rows in _experiment_tables(name, overrides):
        for row in rows:
            rec: _t.Dict[str, _t.Any] = {"experiment": name,
                                         "table": table}
            rec.update(dataclasses.asdict(row))
            records.append(rec)
    return records


def _render_experiments_structured(names: _t.Sequence[str],
                                   overrides: Overrides,
                                   fmt: str) -> str:
    """Machine-readable experiment tables: JSON rows, or one CSV whose
    header is the first-appearance union of row fields (cells missing
    on a row render empty; floats via ``repr`` so they round-trip)."""
    records: _t.List[_t.Dict[str, _t.Any]] = []
    for name in names:
        records += _experiment_records(name, overrides)
    if fmt == "json":
        return json.dumps(records, sort_keys=True, indent=2)
    cols: _t.List[str] = []
    for rec in records:
        for k in rec:
            if k not in cols:
                cols.append(k)

    def cell(v: _t.Any) -> _t.Any:
        if v is None:
            return ""
        if isinstance(v, float):
            return repr(float(v))
        if isinstance(v, (list, tuple)):
            return json.dumps(list(v))
        return v
    buf = io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow(cols)
    for rec in records:
        writer.writerow([cell(rec.get(c)) for c in cols])
    return buf.getvalue()


def _run_scenarios_structured(names: _t.Sequence[str],
                              overrides: Overrides,
                              fmt: str) -> str:
    """Evaluate scenario names as ONE facade sweep (equal points
    dedupe against the result cache unless --no-cache) and render the
    ResultSet machine-readably."""
    scenarios = [get_entry(name).scenario.with_overrides(overrides)
                 for name in names]
    results: ResultSet = api_sweep(scenarios)
    if fmt == "json":
        return results.to_json(indent=2)
    return results.to_csv()


def main(argv: _t.Optional[_t.Sequence[str]] = None) -> int:
    args_in = list(sys.argv[1:] if argv is None else argv)
    if args_in and args_in[0] == "cache":
        # the cache admin verbs take their own flags (--to, --backend),
        # which this parser would reject — hand off before parsing
        from ..fabric.admin import main as cache_main
        return cache_main(args_in[1:],
                          prog="python -m repro.experiments cache")
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables/figures or run "
                    "registered scenarios.")
    parser.add_argument("names", nargs="*",
                        help="experiments or scenario names to run "
                             "(default: all experiments); an optional "
                             "leading 'run' keyword is accepted, and a "
                             "leading 'list' keyword lists instead "
                             "(with the names as glob patterns)")
    parser.add_argument("--list", action="store_true",
                        help="list experiments and registered scenarios "
                             "(same as the 'list' keyword)")
    parser.add_argument("--tag", metavar="NAMESPACE", default=None,
                        help="with list: only names in this namespace "
                             "(the part before the first colon, e.g. "
                             "ext, fig5b, example)")
    parser.add_argument("--set", action="append", default=[],
                        metavar="KEY=VALUE", dest="overrides",
                        help="override a scenario field on everything "
                             "selected (repeatable); e.g. --set degree=3"
                             " --set config.nx=8")
    parser.add_argument("--format", choices=("table", "json", "csv"),
                        default="table", dest="fmt",
                        help="output format: human tables (default), or "
                             "machine-readable JSON/CSV — experiment "
                             "names render their table rows, scenario "
                             "names a ResultSet ('list' supports json)")
    parser.add_argument("--scenario-json", metavar="JSON", default=None,
                        help="run one inline scenario given as the JSON "
                             "produced by Scenario.to_json()/RunResult "
                             "provenance, instead of a registered name "
                             "(--set still applies; this is how the "
                             "differential harness prints reproducible "
                             "failures)")
    parser.add_argument("--workers", type=int, default=1, metavar="N",
                        help="process-pool width for sweep points "
                             "(default: 1, serial)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the on-disk sweep result cache")
    args = parser.parse_args(argv)

    names = list(args.names)
    listing = args.list
    if names and names[0] == "list":
        listing = True
        names = names[1:]
    if listing:
        if args.scenario_json is not None:
            print("error: --scenario-json does not apply to list",
                  file=sys.stderr)
            return 2
        if args.overrides or args.no_cache or args.workers != 1:
            print("error: --set/--workers/--no-cache do not apply to "
                  "list", file=sys.stderr)
            return 2
        if args.fmt == "csv":
            print("error: --format csv applies to scenario runs, not "
                  "list (use --format json)", file=sys.stderr)
            return 2
        try:
            print(_render_listing(names, args.tag, args.fmt))
        except _ListingError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        return 0
    if args.tag is not None:
        parser.error("--tag only applies to list")
    if args.workers < 1:
        parser.error("--workers must be >= 1")
    try:
        overrides = dict(parse_override(expr) for expr in args.overrides)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    configure(workers=args.workers, cache=not args.no_cache)

    if names and names[0] == "run":
        names = names[1:]
        if not names and args.scenario_json is None:
            print("error: 'run' needs an experiment or scenario name",
                  file=sys.stderr)
            return 2

    if args.scenario_json is not None:
        if names:
            print("error: --scenario-json replaces the scenario name; "
                  f"drop {', '.join(names)}", file=sys.stderr)
            return 2
        try:
            scenario = Scenario.from_json(
                args.scenario_json).with_overrides(overrides)
        except (ValueError, TypeError, KeyError) as exc:
            print(f"error: invalid --scenario-json: {exc}",
                  file=sys.stderr)
            return 2
        results: ResultSet = api_sweep([scenario])
        if args.fmt == "json":
            print(results.to_json(indent=2))
        elif args.fmt == "csv":
            print(results.to_csv())
        else:
            run, = results
            rows = [["mode", run.mode],
                    ["wall time (ms)", run.wall_time * 1e3],
                    ["crashes", len(run.crashes) or "-"]]
            rows += [[f"timer:{k} (ms)", v * 1e3]
                     for k, v in sorted(run.timers.items())]
            print(format_table(["field", "value"], rows,
                               title=f"inline — {scenario.summary()}"))
        return 0

    if not names:
        names = list(EXPERIMENTS)

    def unknown(name: str,
                exc: _t.Optional[UnknownScenarioError] = None) -> int:
        # grid points carry exact per-token corrections on the error
        # itself; fall back to fuzzy matching over flat names
        hints = (exc.suggestions if exc is not None and exc.suggestions
                 else suggest_names(name, extra=EXPERIMENTS))
        hint = f"; did you mean: {', '.join(hints)}?" if hints else ""
        print(f"error: unknown experiment or scenario {name!r}{hint}\n"
              f"(see `list` for everything available)", file=sys.stderr)
        return 2

    if args.fmt != "table":
        # machine-readable output: either whole experiments (flat
        # table rows) or scenario names (a ResultSet), not a mix —
        # their record schemas are different currencies
        exp = [n for n in names if n in EXPERIMENTS]
        if exp and len(exp) != len(names):
            print(f"error: --format {args.fmt} cannot mix whole "
                  f"experiments ({', '.join(exp)}) with scenario "
                  f"names in one invocation; run them separately",
                  file=sys.stderr)
            return 2
        try:
            if exp:
                print(_render_experiments_structured(names, overrides,
                                                     args.fmt))
            else:
                print(_run_scenarios_structured(names, overrides,
                                                args.fmt))
        except UnknownScenarioError as exc:
            return unknown(exc.name, exc)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        return 0

    for name in names:
        if name in EXPERIMENTS:
            try:
                print(EXPERIMENTS[name][0](overrides))
            except ValueError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
        else:
            try:
                print(_run_single_scenario(name, overrides))
            except UnknownScenarioError as exc:
                return unknown(name, exc)
            except ValueError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
