"""Regenerate the paper's tables from the command line.

Usage::

    python -m repro.experiments                 # everything (~1 min)
    python -m repro.experiments fig5a fig6c     # selected figures
    python -m repro.experiments --workers 4     # parallel sweep points
    python -m repro.experiments --no-cache      # force recomputation
    python -m repro.experiments --list

Tables print to stdout in the same layout the benchmark harness saves
under ``benchmarks/_results/``.  Sweep points fan out over ``--workers``
processes and results are memoized under ``.perf_cache/`` (disable with
``--no-cache``; delete the directory or bump
``repro.perf.CACHE_VERSION`` after model changes).
"""

from __future__ import annotations

import argparse
import sys
import typing as _t

from ..analysis import format_table
from ..perf import configure
from . import (ccr_vs_replication, copy_strategy_comparison, degree_sweep,
               failure_time_sweep, fig5a, fig5b, fig6a, fig6b, fig6c,
               fig6d, granularity_sweep, minighost_stencil_ablation,
               placement_sweep, scheduler_comparison)


def _fig5a() -> str:
    rows = fig5a()
    return format_table(
        ["kernel", "mode", "time (ms)", "normalized", "efficiency",
         "exposed updates (ms)"],
        [[r.kernel, r.mode, r.time * 1e3, r.normalized, r.efficiency,
          r.exposed_update_time * 1e3] for r in rows],
        title="Figure 5a — HPCCG kernels")


def _fig5b() -> str:
    rows = fig5b()
    return format_table(
        ["physical procs", "mode", "time (ms)", "efficiency"],
        [[r.physical_processes, r.mode, r.time * 1e3, r.efficiency]
         for r in rows],
        title="Figure 5b — HPCCG weak scaling")


def _fig6(fn, label: str) -> str:
    rows = fn()
    return format_table(
        ["app", "mode", "procs", "time (ms)", "efficiency",
         "sections frac"],
        [[r.app, r.mode, r.physical_processes, r.time * 1e3,
          r.efficiency, r.sections_fraction] for r in rows],
        title=label)


def _ablations() -> str:
    parts = []
    parts.append(format_table(
        ["tasks/section", "intra efficiency"],
        [[r.value, r.efficiency] for r in granularity_sweep()],
        title="Ablation — task granularity (sparsemv)"))
    parts.append(format_table(
        ["scheduler", "time (ms)", "relative"],
        [[r.value, r.time * 1e3, r.efficiency]
         for r in scheduler_comparison()],
        title="Ablation — scheduler under imbalance"))
    parts.append(format_table(
        ["replica spread", "efficiency"],
        [[r.value, r.efficiency] for r in placement_sweep()],
        title="Ablation — replica placement"))
    parts.append(format_table(
        ["copy strategy", "time (ms)", "relative"],
        [[r.value, r.time * 1e3, r.efficiency]
         for r in copy_strategy_comparison()],
        title="Ablation — inout protection strategy"))
    parts.append(format_table(
        ["stencil in section", "efficiency"],
        [[r.value, r.efficiency]
         for r in minighost_stencil_ablation()],
        title="Ablation — MiniGhost stencil in sections"))
    return "\n\n".join(parts)


def _background() -> str:
    rows = ccr_vs_replication()
    return format_table(
        ["processes", "system MTBF (h)", "cCR", "replication"],
        [[r.n_procs, r.system_mtbf_hours, r.ccr_efficiency,
          r.replication_efficiency] for r in rows],
        title="Background — cCR vs replication (§II)")


def _extensions() -> str:
    parts = []
    parts.append(format_table(
        ["crash at", "time (ms)", "efficiency", "re-executed"],
        [["none" if r.crash_fraction < 0 else r.crash_fraction,
          r.time * 1e3, r.efficiency, r.reexecuted]
         for r in failure_time_sweep()],
        title="Extension — efficiency vs crash time"))
    parts.append(format_table(
        ["degree", "time (ms)", "efficiency", "update KB"],
        [[r.degree, r.time * 1e3, r.efficiency, r.update_bytes / 1e3]
         for r in degree_sweep()],
        title="Extension — replication degree sweep"))
    return "\n\n".join(parts)


EXPERIMENTS: _t.Dict[str, _t.Callable[[], str]] = {
    "fig5a": _fig5a,
    "fig5b": _fig5b,
    "fig6a": lambda: _fig6(fig6a, "Figure 6a — AMG PCG 27pt"),
    "fig6b": lambda: _fig6(fig6b, "Figure 6b — AMG GMRES 7pt"),
    "fig6c": lambda: _fig6(fig6c, "Figure 6c — GTC"),
    "fig6d": lambda: _fig6(fig6d, "Figure 6d — MiniGhost"),
    "ablations": _ablations,
    "background": _background,
    "extensions": _extensions,
}


def main(argv: _t.Optional[_t.Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables/figures.")
    parser.add_argument("names", nargs="*",
                        help="experiments to run (default: all)")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments")
    parser.add_argument("--workers", type=int, default=1, metavar="N",
                        help="process-pool width for sweep points "
                             "(default: 1, serial)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the on-disk sweep result cache")
    args = parser.parse_args(argv)
    if args.list:
        print("\n".join(EXPERIMENTS))
        return 0
    if args.workers < 1:
        parser.error("--workers must be >= 1")
    configure(workers=args.workers, cache=not args.no_cache)
    names = args.names or list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment(s): {', '.join(unknown)}; "
                     f"choose from {', '.join(EXPERIMENTS)}")
    for name in names:
        print(EXPERIMENTS[name]())
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
