"""Figure 5: HPCCG kernel study (5a) and application weak scaling (5b).

Methodology (paper §V-C): fixed physical resources; the native run uses
the base per-process problem, the replicated runs double the per-
logical-process problem (``with_doubled_z``).  Efficiency is therefore
``t_native / t_mode``.

Every figure point is a :class:`~repro.scenarios.Scenario`; the default
points are registered as ``fig5a:<kernel>:<mode>`` and
``fig5b:p<procs>:<mode>``.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from ..api import sweep as _sweep
from ..apps.hpccg import HpccgConfig, KernelBenchConfig
from ..analysis import fixed_resource_efficiency, normalized_time
from ..scenarios import Scenario, baseline_overrides, register_scenario

KERNELS = ("waxpby", "ddot", "spmv")
MODES = ("native", "sdr", "intra")
_LABELS = {"native": "Open MPI", "sdr": "SDR-MPI", "intra": "intra"}

DESCRIPTION_5A = "Figure 5a — HPCCG kernels (per-kernel efficiency)"
DESCRIPTION_5B = "Figure 5b — HPCCG weak scaling (full application)"


@dataclasses.dataclass
class Fig5aRow:
    """One bar group of Figure 5a."""

    kernel: str
    mode: str
    time: float                   #: mean time inside the kernel
    normalized: float             #: vs Open MPI
    efficiency: float
    exposed_update_time: float    #: the dashed "intra updates" area


def fig5a_scenarios(n_logical: int = 8,
                    base: _t.Optional[KernelBenchConfig] = None,
                    overrides: _t.Optional[_t.Mapping[str, _t.Any]] = None
                    ) -> _t.List[Scenario]:
    """The Figure 5a grid: (kernel-major, mode-minor) scenario points.

    Each kernel is benchmarked in isolation (its own run) so the intra
    runtime's exposed-update statistic is attributable to it.
    """
    base = base or KernelBenchConfig(nx=32, ny=32, nz=16, reps=3)
    ov = dict(overrides or {})
    bov = baseline_overrides(ov)
    points = []
    for kernel in KERNELS:
        cfg_native = dataclasses.replace(base, kernels=(kernel,))
        cfg_repl = cfg_native.with_doubled_z()
        for mode in MODES:
            s = Scenario(app="hpccg_kernels",
                         config=cfg_native if mode == "native"
                         else cfg_repl,
                         n_logical=n_logical, mode=mode)
            points.append(s.with_overrides(bov if mode == "native"
                                           else ov))
    return points


def fig5a(n_logical: int = 8,
          base: _t.Optional[KernelBenchConfig] = None,
          overrides: _t.Optional[_t.Mapping[str, _t.Any]] = None
          ) -> _t.List[Fig5aRow]:
    """Per-kernel normalized time + efficiency in the three modes."""
    runs = _sweep(fig5a_scenarios(n_logical, base, overrides))
    rows: _t.List[Fig5aRow] = []
    for k_idx, kernel in enumerate(KERNELS):
        group = runs[3 * k_idx:3 * k_idx + 3]
        t_native = group[0].timers[kernel]
        for run in group:
            t = run.timers[kernel]
            rows.append(Fig5aRow(
                kernel=kernel if kernel != "spmv" else "sparsemv",
                mode=_LABELS[run.mode], time=t,
                normalized=normalized_time(t_native, t),
                efficiency=fixed_resource_efficiency(t_native, t),
                exposed_update_time=(run.intra.get("exposed_update_time",
                                                   0.0)
                                     if run.mode == "intra" else 0.0)))
    return rows


@dataclasses.dataclass
class Fig5bRow:
    """One point of Figure 5b (per mode, per process count)."""

    physical_processes: int
    mode: str
    time: float
    efficiency: float


def fig5b_scenarios(process_counts: _t.Sequence[int] = (8, 16, 32),
                    base: _t.Optional[HpccgConfig] = None,
                    overrides: _t.Optional[_t.Mapping[str, _t.Any]] = None
                    ) -> _t.List[Scenario]:
    """The Figure 5b grid (process-count-major, mode-minor).

    ``process_counts`` are *physical* process counts; the native run
    uses that many ranks, the replicated runs half as many logical
    ranks with the doubled per-logical problem.
    """
    base = base or HpccgConfig(nx=16, ny=16, nz=16, max_iter=6,
                               intra_kernels=frozenset({"ddot", "spmv"}))
    repl_cfg = base.with_doubled_z()
    ov = dict(overrides or {})
    bov = baseline_overrides(ov)
    points = []
    for procs in process_counts:
        if procs % 2:
            raise ValueError("physical process counts must be even")
        for mode in MODES:
            s = Scenario(app="hpccg",
                         config=base if mode == "native" else repl_cfg,
                         n_logical=procs if mode == "native"
                         else procs // 2,
                         mode=mode)
            points.append(s.with_overrides(bov if mode == "native"
                                           else ov))
    return points


def fig5b(process_counts: _t.Sequence[int] = (8, 16, 32),
          base: _t.Optional[HpccgConfig] = None,
          overrides: _t.Optional[_t.Mapping[str, _t.Any]] = None
          ) -> _t.List[Fig5bRow]:
    """HPCCG full-application weak scaling.

    Intra-parallelization is applied only to ddot and sparsemv ("since
    it does not provide good performance with waxpby", §V-C).
    """
    process_counts = tuple(process_counts)
    runs = _sweep(fig5b_scenarios(process_counts, base, overrides))
    rows: _t.List[Fig5bRow] = []
    for p_idx, procs in enumerate(process_counts):
        native, sdr, intra = runs[3 * p_idx:3 * p_idx + 3]
        rows.append(Fig5bRow(procs, "Open MPI", native.wall_time, 1.0))
        for run, label in ((sdr, "SDR-MPI"), (intra, "intra")):
            rows.append(Fig5bRow(
                procs, label, run.wall_time,
                fixed_resource_efficiency(native.wall_time,
                                          run.wall_time)))
    return rows


def _register_defaults() -> None:
    for s, kernel, mode in zip(fig5a_scenarios(),
                               [k for k in KERNELS for _ in MODES],
                               list(MODES) * len(KERNELS)):
        register_scenario(
            f"fig5a:{kernel}:{mode}", s,
            f"Figure 5a point — HPCCG {kernel} kernel, {mode} mode")
    counts = (8, 16, 32)
    for s, procs, mode in zip(fig5b_scenarios(counts),
                              [p for p in counts for _ in MODES],
                              list(MODES) * len(counts)):
        register_scenario(
            f"fig5b:p{procs}:{mode}", s,
            f"Figure 5b point — HPCCG weak scaling, {procs} physical "
            f"processes, {mode} mode")


_register_defaults()
