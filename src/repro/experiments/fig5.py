"""Figure 5: HPCCG kernel study (5a) and application weak scaling (5b).

Methodology (paper §V-C): fixed physical resources; the native run uses
the base per-process problem, the replicated runs double the per-
logical-process problem (``with_doubled_z``).  Efficiency is therefore
``t_native / t_mode``.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from ..apps.hpccg import (HpccgConfig, KernelBenchConfig,
                          hpccg_kernel_bench, hpccg_program)
from ..analysis import fixed_resource_efficiency, normalized_time
from .common import sweep_modes

KERNELS = ("waxpby", "ddot", "spmv")


@dataclasses.dataclass
class Fig5aRow:
    """One bar group of Figure 5a."""

    kernel: str
    mode: str
    time: float                   #: mean time inside the kernel
    normalized: float             #: vs Open MPI
    efficiency: float
    exposed_update_time: float    #: the dashed "intra updates" area


def fig5a(n_logical: int = 8, base: _t.Optional[KernelBenchConfig] = None
          ) -> _t.List[Fig5aRow]:
    """Per-kernel normalized time + efficiency in the three modes.

    Each kernel is benchmarked in isolation (its own run) so the intra
    runtime's exposed-update statistic is attributable to it.
    """
    base = base or KernelBenchConfig(nx=32, ny=32, nz=16, reps=3)
    points = []
    for kernel in KERNELS:
        cfg_native = dataclasses.replace(base, kernels=(kernel,))
        cfg_repl = cfg_native.with_doubled_z()
        points += [("native", hpccg_kernel_bench, n_logical, cfg_native, {}),
                   ("sdr", hpccg_kernel_bench, n_logical, cfg_repl, {}),
                   ("intra", hpccg_kernel_bench, n_logical, cfg_repl, {})]
    runs = sweep_modes(points)
    rows: _t.List[Fig5aRow] = []
    for k_idx, kernel in enumerate(KERNELS):
        native, sdr, intra = runs[3 * k_idx:3 * k_idx + 3]
        t_native = native.timers[kernel]
        for run in (native, sdr, intra):
            label = {"native": "Open MPI", "sdr": "SDR-MPI",
                     "intra": "intra"}[run.mode]
            t = run.timers[kernel]
            rows.append(Fig5aRow(
                kernel=kernel if kernel != "spmv" else "sparsemv",
                mode=label, time=t,
                normalized=normalized_time(t_native, t),
                efficiency=fixed_resource_efficiency(t_native, t),
                exposed_update_time=(run.intra.get("exposed_update_time",
                                                   0.0)
                                     if run.mode == "intra" else 0.0)))
    return rows


@dataclasses.dataclass
class Fig5bRow:
    """One point of Figure 5b (per mode, per process count)."""

    physical_processes: int
    mode: str
    time: float
    efficiency: float


def fig5b(process_counts: _t.Sequence[int] = (8, 16, 32),
          base: _t.Optional[HpccgConfig] = None) -> _t.List[Fig5bRow]:
    """HPCCG full-application weak scaling.

    Intra-parallelization is applied only to ddot and sparsemv ("since
    it does not provide good performance with waxpby", §V-C).
    ``process_counts`` are *physical* process counts; the native run
    uses that many ranks, the replicated runs half as many logical
    ranks with the doubled per-logical problem.
    """
    base = base or HpccgConfig(nx=16, ny=16, nz=16, max_iter=6,
                               intra_kernels=frozenset({"ddot", "spmv"}))
    repl_cfg = base.with_doubled_z()
    points = []
    for procs in process_counts:
        if procs % 2:
            raise ValueError("physical process counts must be even")
        points += [("native", hpccg_program, procs, base, {}),
                   ("sdr", hpccg_program, procs // 2, repl_cfg, {}),
                   ("intra", hpccg_program, procs // 2, repl_cfg, {})]
    runs = sweep_modes(points)
    rows: _t.List[Fig5bRow] = []
    for p_idx, procs in enumerate(process_counts):
        native, sdr, intra = runs[3 * p_idx:3 * p_idx + 3]
        rows.append(Fig5bRow(procs, "Open MPI", native.wall_time, 1.0))
        for run, label in ((sdr, "SDR-MPI"), (intra, "intra")):
            rows.append(Fig5bRow(
                procs, label, run.wall_time,
                fixed_resource_efficiency(native.wall_time,
                                          run.wall_time)))
    return rows
