"""The §II motivating comparison: cCR vs replication at scale.

Reproduces the argument of [1]/[8] that the paper builds on: as node
counts grow (system MTBF shrinks), plain coordinated checkpoint-restart
efficiency collapses below 50%, while replication — whose MTTI grows
like sqrt(N) failures [16] — holds near its 50% resource cap, making
intra-parallelization's >50% the headline improvement.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from ..analysis import plain_ccr_efficiency, replicated_ccr_efficiency
from ..perf import run_sweep

DESCRIPTION = "Background — cCR vs replication efficiency model (§II)"

#: the analytic model's knobs, overridable from the CLI
#: (``--set node_mtbf_years=3``); this study has no machine/program, so
#: it is parameterized directly rather than through Scenario specs —
#: accordingly it rides :func:`repro.perf.run_sweep` below the
#: :mod:`repro.api` facade (no scenario, no RunResult; the rows are
#: its own :class:`BackgroundRow` model values)
OVERRIDABLE = ("proc_counts", "node_mtbf_years", "checkpoint_minutes",
               "restart_minutes")


def apply_overrides(overrides: _t.Optional[_t.Mapping[str, _t.Any]]
                    ) -> _t.Dict[str, _t.Any]:
    """Map CLI ``--set`` overrides onto :func:`ccr_vs_replication`
    keyword arguments (unknown keys raise, like scenario overrides)."""
    kwargs: _t.Dict[str, _t.Any] = {}
    for key, value in (overrides or {}).items():
        if key not in OVERRIDABLE:
            raise ValueError(
                f"unknown background-model override {key!r}; expected "
                f"one of {OVERRIDABLE}")
        if key == "proc_counts":
            kwargs[key] = tuple(int(v) for v in value)
        else:
            kwargs[key] = float(value)
    return kwargs


@dataclasses.dataclass
class BackgroundRow:
    n_procs: int
    system_mtbf_hours: float
    ccr_efficiency: float
    replication_efficiency: float


def _ccr_point(point: _t.Tuple[int, float, float, float]) -> BackgroundRow:
    """Sweep point: one machine size of the cCR-vs-replication model."""
    n, node_mtbf, delta, restart = point
    return BackgroundRow(
        n_procs=n,
        system_mtbf_hours=node_mtbf / n / 3600.0,
        ccr_efficiency=plain_ccr_efficiency(n, node_mtbf, delta, restart),
        replication_efficiency=replicated_ccr_efficiency(
            n // 2, node_mtbf, delta, restart))


def ccr_vs_replication(
        proc_counts: _t.Sequence[int] = (1_000, 10_000, 50_000, 100_000,
                                         500_000, 1_000_000),
        node_mtbf_years: float = 5.0,
        checkpoint_minutes: float = 15.0,
        restart_minutes: float = 15.0) -> _t.List[BackgroundRow]:
    """Efficiency of plain cCR vs replication(degree 2)+rare-cCR as the
    machine grows; PFS-scale checkpoint costs."""
    node_mtbf = node_mtbf_years * 365.0 * 24 * 3600
    delta = checkpoint_minutes * 60
    restart = restart_minutes * 60
    return run_sweep([(n, node_mtbf, delta, restart)
                      for n in proc_counts],
                     _ccr_point, tag="ccr_vs_replication")


def crossover_point(rows: _t.Sequence[BackgroundRow]) -> _t.Optional[int]:
    """First process count at which replication beats plain cCR."""
    for row in rows:
        if row.replication_efficiency > row.ccr_efficiency:
            return row.n_procs
    return None
