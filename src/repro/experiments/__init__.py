"""Experiment harness regenerating every figure of the paper (S14).

Importing this package registers every figure-point scenario with the
:mod:`repro.scenarios` registry (``fig5a:*``, ``fig5b:*``, ``fig6*:*``,
``ablation:*``, ``ext:*``); the example scenarios register through
:mod:`repro.scenarios.catalog`.
"""

from .ablations import (AblationRow, copy_strategy_comparison,
                        granularity_sweep, inout_overhead,
                        minighost_stencil_ablation, placement_sweep,
                        scheduler_comparison)
from .background import BackgroundRow, ccr_vs_replication, crossover_point
from .common import (ModeRun, nodes_for, run_mode, scenario_for,
                     sweep_scenarios, three_mode_rows)
from .extensions import (DegreeSweepRow, FailureSweepRow, PoissonRow,
                         degree_sweep, failure_time_sweep,
                         poisson_failure_rows)
from .fig5 import (Fig5aRow, Fig5bRow, fig5a, fig5a_scenarios, fig5b,
                   fig5b_scenarios)
from .fig6 import Fig6Row, fig6a, fig6b, fig6c, fig6d

__all__ = [
    "AblationRow", "BackgroundRow", "Fig5aRow", "Fig5bRow", "Fig6Row",
    "ModeRun", "PoissonRow", "ccr_vs_replication",
    "copy_strategy_comparison", "crossover_point", "fig5a",
    "fig5a_scenarios", "fig5b", "fig5b_scenarios", "fig6a", "fig6b",
    "fig6c", "fig6d", "granularity_sweep", "inout_overhead",
    "DegreeSweepRow", "FailureSweepRow", "degree_sweep",
    "failure_time_sweep", "minighost_stencil_ablation", "nodes_for",
    "placement_sweep", "poisson_failure_rows", "run_mode",
    "scenario_for", "scheduler_comparison", "sweep_scenarios",
    "three_mode_rows",
]
