"""Task model of intra-parallelization (paper §III-B, Definitions 1–2).

A *section* is a block of computation with no message passing whose
enclosing replicas are consistent on entry and exit.  A *task* is a unit
of work inside a section, executed by exactly one replica, whose output
("update") is shipped to the sibling replicas.  The only inter-task
dependence allowed is input dependence, so tasks of one section can run
in any order on any replica (Definition 2) — which is what makes failure
recovery by re-execution possible.
"""

from __future__ import annotations

import dataclasses
import enum
import typing as _t

import numpy as np


class Tag(enum.Enum):
    """Argument intent, as in ``Intra_Task_register`` (§III-C).

    * ``IN`` — read only; never transferred.
    * ``OUT`` — written (every element) by the task; transferred to the
      sibling replicas after execution.
    * ``INOUT`` — read and written; transferred, *and* protected by an
      extra copy against the true-dependence hazard of re-execution
      (§III-B2, Figure 2).
    """

    IN = "in"
    OUT = "out"
    INOUT = "inout"


class CopyStrategy(enum.Enum):
    """Where the `inout` protection copy is taken (§III-B2 discusses the
    first two as equal-cost alternatives; ``LAZY`` is what Algorithm 1
    implements).

    * ``LAZY`` — receivers copy `inout` variables when they start
      receiving a task's updates (Algorithm 1, lines 37–38); the
      re-executor restores from that copy (lines 30–31).
    * ``EAGER`` — every replica copies `inout` variables at task
      instantiation (the §III-C API description).
    * ``ATOMIC`` — no copies; receivers buffer a task's update and apply
      it only once complete, so variables are never partially written.
    * ``NONE`` — no protection at all: deliberately reproduces the
      *incorrect* execution of Figure 2b (for tests/demonstration only).
    """

    LAZY = "lazy"
    EAGER = "eager"
    ATOMIC = "atomic"
    NONE = "none"


#: cost callback: (vars...) -> (flops, bytes_moved)
CostFn = _t.Callable[..., _t.Tuple[float, float]]


def zero_cost(*_vars: _t.Any) -> _t.Tuple[float, float]:
    """Default cost model: free computation (protocol-only tests)."""
    return (0.0, 0.0)


@dataclasses.dataclass
class TaskDef:
    """A registered task type (``Intra_Task_register``)."""

    id: int
    fn: _t.Callable[..., _t.Any]
    tags: _t.List[Tag]
    cost: CostFn = zero_cost
    #: indices of arguments transferred after execution (non-IN);
    #: derived from ``tags`` once — the runtime reads this per task per
    #: section, so recomputing it per access showed up in profiles
    update_args: _t.Tuple[int, ...] = dataclasses.field(init=False)
    #: indices of arguments needing re-execution protection
    inout_args: _t.Tuple[int, ...] = dataclasses.field(init=False)

    def __post_init__(self) -> None:
        if not callable(self.fn):
            raise TypeError("task function must be callable")
        if not self.tags:
            raise ValueError("task needs at least one argument tag")
        self.update_args = tuple(i for i, t in enumerate(self.tags)
                                 if t is not Tag.IN)
        self.inout_args = tuple(i for i, t in enumerate(self.tags)
                                if t is Tag.INOUT)


@dataclasses.dataclass
class LaunchedTask:
    """A task instance within the current section
    (``Intra_Task_launch``)."""

    index: int                       #: launch order within the section
    tdef: TaskDef
    vars: _t.List[_t.Any]
    executor: int = -1               #: replica id assigned by the scheduler
    #: protection copies of inout variables, by argument index
    copies: _t.Dict[int, np.ndarray] = dataclasses.field(default_factory=dict)
    #: argument indices whose update has been applied locally
    applied: _t.Set[int] = dataclasses.field(default_factory=set)
    #: buffered updates awaiting atomic application (ATOMIC strategy)
    buffered: _t.Dict[int, np.ndarray] = dataclasses.field(
        default_factory=dict)
    #: True once this replica holds the task's complete post-state
    done: bool = False
    #: True if this replica executed the task itself
    executed_locally: bool = False

    def __post_init__(self) -> None:
        if len(self.vars) != len(self.tdef.tags):
            raise ValueError(
                f"task {self.tdef.id}: {len(self.vars)} vars for "
                f"{len(self.tdef.tags)} declared tags")
        for i in self.tdef.update_args:
            if not isinstance(self.vars[i], np.ndarray):
                raise TypeError(
                    f"task {self.tdef.id} arg {i}: OUT/INOUT arguments "
                    f"must be numpy arrays (got "
                    f"{type(self.vars[i]).__name__}); wrap scalars in a "
                    f"1-element array")

    @property
    def update_nbytes(self) -> int:
        """Total size of this task's update messages."""
        return sum(int(self.vars[i].nbytes) for i in self.tdef.update_args)

    def restore_nbytes(self) -> int:
        """Bytes :meth:`restore_copies` *would* restore — the side-effect
        free probe batched section execution uses to plan a stretch's
        memcpy segments before any restore has actually run."""
        return sum(int(s.nbytes) for s in self.copies.values())

    def recycle(self, index: int, tdef: TaskDef,
                vars: _t.List[_t.Any]) -> "LaunchedTask":
        """Reinitialize a pooled instance for a new launch.

        Equivalent to constructing a fresh :class:`LaunchedTask` (the
        same ``__post_init__`` validation runs), but the per-task
        containers are cleared in place instead of reallocated — the
        section-shape pooling of
        :class:`repro.intra.runtime.IntraRuntimeBase` recycles task
        objects across sections because their construction showed up in
        the section microbenchmark next to dispatch itself.
        """
        self.index = index
        self.tdef = tdef
        self.vars = vars
        self.executor = -1
        self.copies.clear()
        self.applied.clear()
        self.buffered.clear()
        self.done = False
        self.executed_locally = False
        self.__post_init__()
        return self

    def release(self) -> None:
        """Drop payload references before parking in a pool (keeping a
        retired task's arrays and snapshots alive across sections would
        be a silent memory leak)."""
        self.vars = []
        self.copies.clear()
        self.buffered.clear()

    def take_copies(self, arg_indices: _t.Iterable[int]) -> int:
        """Snapshot the given arguments into :attr:`copies` (no-op for
        args already copied).  Returns bytes copied."""
        copied = 0
        for i in arg_indices:
            if i not in self.copies:
                self.copies[i] = np.array(self.vars[i], copy=True)
                copied += int(self.copies[i].nbytes)
        return copied

    def restore_copies(self) -> int:
        """Restore inout arguments from their protection copies before a
        (re-)execution (Algorithm 1, lines 30–31).  Returns bytes
        restored."""
        restored = 0
        for i, snapshot in self.copies.items():
            np.copyto(self.vars[i], snapshot)
            restored += int(snapshot.nbytes)
        return restored
