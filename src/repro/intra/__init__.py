"""Intra-parallelization (system S7) — the paper's contribution.

Work sharing between the replicas of a logical MPI process: sections are
split into tasks, each executed by one replica, with results shipped to
siblings so all replicas are consistent at section exit (paper §III)."""

from .api import (Intra_Section_begin, Intra_Section_end,
                  Intra_Task_launch, Intra_Task_register, launch_intra_job,
                  launch_mode, launch_native_job, launch_sdr_job, MODES)
from .runtime import (IntraError, IntraRuntime, IntraRuntimeBase,
                      LocalIntraRuntime, MAX_ARGS,
                      section_batching_enabled, set_section_batching,
                      set_task_pooling, task_pooling_enabled)
from .scheduler import (SCHEDULERS, CostBalancedScheduler,
                        RoundRobinScheduler, Scheduler,
                        StaticBlockScheduler, make_scheduler)
from .stats import IntraStats
from .sugar import IN, INOUT, OUT, SectionBuilder, parallel_for, section
from .task import (CopyStrategy, CostFn, LaunchedTask, Tag, TaskDef,
                   zero_cost)

__all__ = [
    "CopyStrategy", "CostBalancedScheduler", "CostFn",
    "Intra_Section_begin", "Intra_Section_end", "Intra_Task_launch",
    "Intra_Task_register", "IntraError", "IntraRuntime",
    "IntraRuntimeBase", "IntraStats", "LaunchedTask", "LocalIntraRuntime",
    "MAX_ARGS", "MODES", "RoundRobinScheduler", "SCHEDULERS", "Scheduler",
    "StaticBlockScheduler", "Tag", "TaskDef", "launch_intra_job",
    "launch_mode", "launch_native_job", "launch_sdr_job",
    "make_scheduler", "section_batching_enabled", "set_section_batching",
    "set_task_pooling", "task_pooling_enabled", "zero_cost",
    "IN", "INOUT", "OUT", "SectionBuilder", "parallel_for", "section",
]
