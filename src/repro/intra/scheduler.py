"""Task→replica scheduling policies (paper §V-A).

The paper's prototype uses a *static block* schedule: with N tasks and a
replication degree of 2, "the N/2 first launched tasks of a section are
executed by replica 1 and the N/2 last ones are executed by replica 2",
and notes "more complex strategies could be designed if needed, for
instance to deal with load imbalance".  We implement the paper's policy
plus two alternates for the scheduler ablation bench.

Determinism contract: every replica computes the schedule independently,
so ``assign`` must be a pure function of (tasks, executors) — never of
local runtime state.
"""

from __future__ import annotations

import typing as _t

from .task import LaunchedTask


class Scheduler:
    """Interface: map each task to an executor replica id."""

    name = "abstract"

    def assign(self, tasks: _t.Sequence[LaunchedTask],
               executors: _t.Sequence[int]) -> _t.List[int]:
        """Return ``executor_rid[i]`` for each task, given the ascending
        list of live replica ids."""
        raise NotImplementedError


class StaticBlockScheduler(Scheduler):
    """The paper's policy: contiguous blocks of the launch order.

    With N tasks and R executors, executor *k* gets tasks
    ``[k*N/R, (k+1)*N/R)`` (balanced to within one task).
    """

    name = "static-block"

    def assign(self, tasks: _t.Sequence[LaunchedTask],
               executors: _t.Sequence[int]) -> _t.List[int]:
        _check(tasks, executors)
        n, r = len(tasks), len(executors)
        out = []
        for i in range(n):
            # block boundaries at ceil-balanced split points
            k = (i * r) // n
            out.append(executors[k])
        return out


class RoundRobinScheduler(Scheduler):
    """Deal tasks like cards: task *i* → executor ``i mod R``.

    Interleaves executors in launch order; with heterogeneous task costs
    this balances better than blocks, at the price of less bunched
    update traffic."""

    name = "round-robin"

    def assign(self, tasks: _t.Sequence[LaunchedTask],
               executors: _t.Sequence[int]) -> _t.List[int]:
        _check(tasks, executors)
        return [executors[i % len(executors)] for i in range(len(tasks))]


class CostBalancedScheduler(Scheduler):
    """Greedy longest-processing-time balancing on the declared cost
    model (flops + bytes, collapsed to estimated seconds at unit rates).

    Deterministic: ties break on task launch index.  Useful when tasks
    of one section have very different costs (e.g. boundary vs interior
    blocks of a stencil)."""

    name = "cost-balanced"

    def __init__(self, flop_rate: float = 1e9, mem_bandwidth: float = 4e9):
        if flop_rate <= 0 or mem_bandwidth <= 0:
            raise ValueError("rates must be positive")
        self.flop_rate = flop_rate
        self.mem_bandwidth = mem_bandwidth

    def _estimate(self, task: LaunchedTask) -> float:
        flops, nbytes = task.tdef.cost(*task.vars)
        return max(flops / self.flop_rate, nbytes / self.mem_bandwidth)

    def assign(self, tasks: _t.Sequence[LaunchedTask],
               executors: _t.Sequence[int]) -> _t.List[int]:
        _check(tasks, executors)
        loads = {e: 0.0 for e in executors}
        order = sorted(range(len(tasks)),
                       key=lambda i: (-self._estimate(tasks[i]), i))
        out = [-1] * len(tasks)
        for i in order:
            # least-loaded executor; ties break on executor id
            target = min(executors, key=lambda e: (loads[e], e))
            out[i] = target
            loads[target] += self._estimate(tasks[i])
        return out


def _check(tasks: _t.Sequence[LaunchedTask],
           executors: _t.Sequence[int]) -> None:
    if not executors:
        raise ValueError("no live executors to schedule on")
    if len(set(executors)) != len(executors):
        raise ValueError("duplicate executor ids")


SCHEDULERS: _t.Dict[str, _t.Callable[[], Scheduler]] = {
    "static-block": StaticBlockScheduler,
    "round-robin": RoundRobinScheduler,
    "cost-balanced": CostBalancedScheduler,
}


def make_scheduler(name: str) -> Scheduler:
    """Scheduler factory by policy name."""
    try:
        return SCHEDULERS[name]()
    except KeyError:
        raise ValueError(f"unknown scheduler {name!r}; expected one of "
                         f"{sorted(SCHEDULERS)}") from None
