"""The intra-parallelization runtimes (paper §III-D, Algorithm 1).

Two implementations of one interface:

* :class:`LocalIntraRuntime` — every task executes locally.  Used for
  the native (no replication) runs **and** for classic state-machine
  replication (SDR-MPI mode), where each replica redundantly executes
  the whole section; this is exactly how the paper's baseline behaves.

* :class:`IntraRuntime` — work sharing between the replicas of one
  logical process.  Implements Algorithm 1 with the overlap optimisation
  of §V-A: reception requests for all remote updates are posted on entry
  to ``section_end``; each locally executed task posts its update sends
  immediately; everything completes in a single ``Waitall``; failures
  trigger local re-execution of the dead replica's unfinished tasks.

Both are attached to ``ctx.intra`` by the job launchers in
:mod:`repro.intra.api`, so application code is written once and runs in
all three modes (Open MPI / SDR-MPI / intra of the paper's figures).

Batched section execution
-------------------------
:class:`LocalIntraRuntime` sections are pure compute with no observable
effects between tasks (no update messages, no hooks), so instead of one
engine event + generator resume per task, the runtime emits one
*multi-segment compute descriptor* — the per-task roofline costs — to
:meth:`repro.mpi.world.ProcContext.compute_batch` and sleeps exactly
once for the whole section.  Wake times, ``compute_time`` and
``IntraStats`` accumulate with unchanged float arithmetic, so results
are bit-identical to the task-by-task path (asserted by
``tests/intra/test_batched_sections.py``).  Failure injection still
lands mid-batch at the exact scheduled time: a crash-stop kill closes
the process during the single wake, and segments past the crash point
never execute — the "split on interrupt" contract of ``compute_batch``.
The bit-identity guarantee is scoped to state observable from
*survivors* (and to failure-free runs in full); a killed replica's own
context accounting is not replayed segment by segment, and nothing in
the repo reads it (see ``compute_batch``'s docstring).

The task-by-task path is kept as the oracle: it runs when
:func:`set_section_batching` disabled batching, when a trace hook is
installed (trace-based tests pin seed-exact per-event streams), or for
single-task sections (nothing to batch).

Split-on-send batching (work sharing)
-------------------------------------
:class:`IntraRuntime` — the work-sharing mode — *does* post observable
effects between segments: each locally executed task ships its updates
to the sibling replicas the moment it completes (§V-A overlap), and the
``isend`` post time determines everything downstream (injection time,
the ``update_injected`` crash window of Figure 2, when receivers apply).
So its sections batch with a refinement: the run of consecutive local
tasks is charged as multi-segment descriptors
(:meth:`repro.mpi.world.ProcContext.charge_batch` — kernel segments
interleaved with `inout`-restore memcpys), **split at every update
send** so each sending task ends its sub-batch and posts its isends
at the exact virtual time the task-by-task oracle would.  Tasks that
send nothing — IN-only tasks, or any task once the last sibling died —
coalesce with the tasks after them into a single wake.  Timing,
statistics and results are bit-identical
(``tests/intra/test_batched_worksharing.py`` proves it golden-trace
style, crash injection included); the oracle additionally runs whenever
a ``task_executed`` hook has subscribers or the hook bus is recording,
because those observe per-task protocol points mid-stretch.

Task/section pooling
--------------------
Independently of how sections are *charged*, the per-section
bookkeeping — a fresh :class:`SectionState`, a
:class:`~repro.intra.task.TaskDef` per register and a
:class:`~repro.intra.task.LaunchedTask` per launch — costs as much as
dispatch itself on fine-grained sections (the ROADMAP-flagged follow-up
to PR 3).  Since applications run the same section shape step after
step, :class:`IntraRuntimeBase` recycles all three across sections:
task defs are cached per ``(fn, tags, cost)``, launched tasks and the
section state are reset in place from per-runtime pools.  The unpooled
path is kept as the oracle behind :func:`set_task_pooling`.
"""

from __future__ import annotations

import typing as _t

import numpy as np

from ..mpi.errors import RankFailure
from ..mpi.request import Request
from ..mpi.world import SEG_COMPUTE, SEG_MEMCPY
from ..simulate import ConditionError
from .scheduler import Scheduler, StaticBlockScheduler
from .stats import IntraStats
from .task import CopyStrategy, CostFn, LaunchedTask, TaskDef, Tag, zero_cost

if _t.TYPE_CHECKING:  # pragma: no cover
    from ..mpi.communicator import BoundComm
    from ..mpi.world import ProcContext
    from ..replication.manager import ReplicationManager

#: update-message tag layout: tag = task_index * MAX_ARGS + arg_index
MAX_ARGS = 64

from .._envflags import env_flag as _env_flag

#: process-wide switch for batched section execution in
#: :class:`LocalIntraRuntime` (the perf benchmark flips it to time the
#: task-by-task oracle path; semantics are bit-identical either way).
#: Seeded from ``REPRO_SECTION_BATCHING`` (garbage warns, default on).
BATCH_SECTIONS = _env_flag("REPRO_SECTION_BATCHING", True)


def set_section_batching(enabled: bool) -> bool:
    """Enable/disable batched section execution; returns the previous
    setting.  Disabling routes :class:`LocalIntraRuntime` sections
    through the task-by-task oracle path (one engine event per task)."""
    global BATCH_SECTIONS
    prev = BATCH_SECTIONS
    BATCH_SECTIONS = bool(enabled)
    return prev


def section_batching_enabled() -> bool:
    """Whether :class:`LocalIntraRuntime` sections run batched."""
    return BATCH_SECTIONS


#: process-wide switch for section-shape pooling of TaskDef /
#: LaunchedTask / SectionState objects (the perf benchmark flips it to
#: time the allocate-per-section oracle path; semantics are identical).
#: Seeded from ``REPRO_TASK_POOLING`` (garbage warns, default on).
POOL_TASKS = _env_flag("REPRO_TASK_POOLING", True)

#: retired LaunchedTask objects kept per runtime — far above any real
#: section's task count, just a backstop against pathological shapes
_TASK_POOL_MAX = 4096

#: distinct (fn, tags, cost) signatures cached per runtime before the
#: cache is flushed wholesale.  Far above any app's stable task-type
#: count — but apps that register per-call *closures* (e.g.
#: ``make_spmv_task(matrix)`` builds fresh fn/cost objects each
#: section) miss the cache every time, and without the flush each miss
#: would pin a dead TaskDef — and whatever the closure captures — for
#: the life of the runtime.  Stable signatures re-warm in one section.
_TDEF_CACHE_MAX = 256


def set_task_pooling(enabled: bool) -> bool:
    """Enable/disable section-shape object pooling; returns the previous
    setting.  Disabling routes every section through the
    allocate-fresh-objects oracle path."""
    global POOL_TASKS
    prev = POOL_TASKS
    POOL_TASKS = bool(enabled)
    return prev


def task_pooling_enabled() -> bool:
    """Whether section bookkeeping objects are pooled across sections."""
    return POOL_TASKS


class IntraError(RuntimeError):
    """Misuse of the intra-parallelization API."""


class SectionState:
    """The mutable state between ``section_begin`` and ``section_end``."""

    def __init__(self) -> None:
        self.task_defs: _t.Dict[int, TaskDef] = {}
        self.tasks: _t.List[LaunchedTask] = []

    def reset(self) -> None:
        """Clear for reuse by the next section (object pooling)."""
        self.task_defs.clear()
        self.tasks.clear()


class IntraRuntimeBase:
    """Shared API: section/task bookkeeping (Algorithm 1, lines 9–19)."""

    def __init__(self, ctx: "ProcContext"):
        self.ctx = ctx
        self.stats = IntraStats()
        self._section: _t.Optional[SectionState] = None
        self.section_index = -1
        #: task-type cache for pooling: (fn, tags, cost) -> TaskDef
        self._tdef_cache: _t.Dict[_t.Any, TaskDef] = {}
        #: monotonic task-type ids (unique across the runtime's lifetime,
        #: so cached and fresh defs can never collide within a section)
        self._next_tdef_id = 0
        #: retired LaunchedTask objects awaiting recycling
        self._task_pool: _t.List[LaunchedTask] = []
        #: retired SectionState awaiting reuse (sections never nest, so
        #: one parked state is all a runtime can ever need)
        self._section_pool: _t.List[SectionState] = []

    # ------------------------------------------------------------- API
    def section_begin(self) -> None:
        """``Intra_Section_begin`` — open a section (lines 9–12)."""
        if self._section is not None:
            raise IntraError("nested intra-parallel sections are not "
                             "allowed (Definition 1)")
        if POOL_TASKS and self._section_pool:
            self._section = self._section_pool.pop()
        else:
            self._section = SectionState()
        self.section_index += 1
        self.stats.sections += 1

    def task_register(self, fn: _t.Callable[..., _t.Any],
                      tags: _t.Sequence[_t.Union[Tag, str]],
                      cost: CostFn = zero_cost) -> int:
        """``Intra_Task_register`` — declare a task type (lines 13–16).

        ``tags`` gives the intent of each of ``fn``'s positional
        arguments (:class:`~repro.intra.task.Tag` or the strings
        ``"in"/"out"/"inout"``); ``cost(*vars)`` returns the
        ``(flops, bytes_moved)`` the roofline model charges.

        ``cost`` must be a pure function of its arguments' *shapes*
        (sizes/dtypes), never of their values: batched section
        execution (see the module docstring) evaluates all costs of a
        section up front, before any task ``fn`` has run, so a
        value-dependent cost would charge different virtual time than
        the task-by-task oracle.  Every roofline model in
        :mod:`repro.kernels` satisfies this by construction.
        """
        sec = self._require_section("Intra_Task_register")
        norm = [t if isinstance(t, Tag) else Tag(t) for t in tags]
        if len(norm) > MAX_ARGS:
            raise IntraError(f"at most {MAX_ARGS} task arguments supported")
        tdef: _t.Optional[TaskDef] = None
        key: _t.Optional[_t.Any] = None
        if POOL_TASKS:
            # Applications register the same task types section after
            # section; cache the (immutable) TaskDef per signature so a
            # re-register is one dict probe instead of a dataclass
            # construction plus tag-derivation.
            try:
                key = (fn, tuple(norm), cost)
                tdef = self._tdef_cache.get(key)
            except TypeError:       # unhashable fn/cost: no caching
                key = None
        if tdef is None:
            self._next_tdef_id += 1
            tdef = TaskDef(self._next_tdef_id, fn, norm, cost)
            if key is not None:
                if len(self._tdef_cache) >= _TDEF_CACHE_MAX:
                    # epoch flush: dead closure signatures dominate once
                    # we get here; stable signatures re-warm in one
                    # section each
                    self._tdef_cache.clear()
                self._tdef_cache[key] = tdef
        sec.task_defs[tdef.id] = tdef
        return tdef.id

    def task_launch(self, task_id: int, vars: _t.Sequence[_t.Any]) -> None:
        """``Intra_Task_launch`` — instantiate a task (lines 17–19)."""
        sec = self._require_section("Intra_Task_launch")
        try:
            tdef = sec.task_defs[task_id]
        except KeyError:
            raise IntraError(f"task id {task_id} was not registered in "
                             f"this section") from None
        pool = self._task_pool
        if POOL_TASKS and pool:
            task = pool.pop().recycle(len(sec.tasks), tdef, list(vars))
        else:
            task = LaunchedTask(index=len(sec.tasks), tdef=tdef,
                                vars=list(vars))
        sec.tasks.append(task)
        self.stats.tasks_launched += 1

    def section_end(self):
        """``Intra_Section_end`` — run the section protocol (generator:
        ``yield from runtime.section_end()``)."""
        sec = self._require_section("Intra_Section_end")
        self._section = None
        t0 = self.ctx.now
        with self.ctx.region("sections"):
            yield from self._run_section(sec)
        self.stats.section_time += self.ctx.now - t0
        if POOL_TASKS:
            self._recycle_section(sec)

    def _recycle_section(self, sec: SectionState) -> None:
        """Park a completed section's objects for the next same-shape
        section.

        Only reached on clean completion: a crash (``GeneratorExit``) or
        an unrecovered failure unwinds past this point, so task objects
        that might still be referenced by in-flight transfer closures
        are simply dropped instead of recycled.  By section exit every
        update request has completed (the section protocol ends in a
        Waitall), so no completion callback can touch a recycled task.
        """
        pool = self._task_pool
        for task in sec.tasks:
            if len(pool) >= _TASK_POOL_MAX:
                break
            task.release()
            pool.append(task)
        sec.reset()
        if not self._section_pool:
            self._section_pool.append(sec)

    def run_local(self, fn: _t.Callable[..., _t.Any],
                  vars: _t.Sequence[_t.Any],
                  cost: CostFn = zero_cost):
        """Execute a kernel locally, outside any section (generator).

        Used for computation the application does *not* intra-parallelize
        (e.g. waxpby in the paper's Figure 5b runs, or MiniGhost's
        stencil): every replica executes it redundantly, charging the
        same roofline cost as a section task would.
        """
        if self._section is not None:
            raise IntraError("run_local inside an open section; put the "
                             "kernel in the section or close it first")
        flops, nbytes = cost(*vars)
        if flops or nbytes:
            yield self.ctx.compute(flops=flops, bytes_moved=nbytes)
        fn(*vars)

    # ----------------------------------------------------------- helpers
    def _require_section(self, what: str) -> SectionState:
        if self._section is None:
            raise IntraError(f"{what} called outside an intra-parallel "
                             f"section")
        return self._section

    def _run_section(self, sec: SectionState):
        raise NotImplementedError  # pragma: no cover

    def _execute_fn(self, task: LaunchedTask):
        """Charge the roofline cost and run the task function (real
        numpy arithmetic — replica state actually changes)."""
        flops, nbytes = task.tdef.cost(*task.vars)
        if flops or nbytes:
            before = self.ctx.now
            yield self.ctx.compute(flops=flops, bytes_moved=nbytes)
            self.stats.task_compute_time += self.ctx.now - before
        task.tdef.fn(*task.vars)
        self.stats.tasks_executed += 1


class LocalIntraRuntime(IntraRuntimeBase):
    """Execute every task locally (native and classic-replication
    modes): sections degenerate to plain sequential computation.

    With :data:`BATCH_SECTIONS` enabled (the default), the whole section
    is charged as one multi-segment compute descriptor — a single engine
    wake instead of one event + generator resume per task (see the
    module docstring for the exact-equivalence argument).
    """

    def _run_section(self, sec: SectionState):
        tasks = sec.tasks
        if (not BATCH_SECTIONS or len(tasks) < 2
                or self.ctx.sim._trace is not None):
            # oracle path: one engine event per task (also keeps
            # trace-based tests on the seed-exact per-event stream)
            for task in tasks:
                yield from self._execute_fn(task)
                task.executed_locally = True
                task.done = True
            return
        ctx = self.ctx
        stats = self.stats
        # Roofline costs are pure functions of argument *shapes*, so
        # evaluating them up front (before any task fn mutates data)
        # matches the interleaved oracle path.
        costs = [task.tdef.cost(*task.vars) for task in tasks]
        t_prev = ctx.sim.now
        event, stamps = ctx.compute_batch(costs)
        if event is not None:
            yield event
        # a kill during the wake lands here as GeneratorExit: tasks past
        # the crash point never execute (split on interrupt)
        for task, (flops, nbytes), stamp in zip(tasks, costs, stamps):
            if flops or nbytes:
                stats.task_compute_time += stamp - t_prev
                t_prev = stamp
            task.tdef.fn(*task.vars)
            stats.tasks_executed += 1
            task.executed_locally = True
            task.done = True


class IntraRuntime(IntraRuntimeBase):
    """Work-sharing runtime (Algorithm 1 + §V-A overlap)."""

    def __init__(self, ctx: "ProcContext", manager: "ReplicationManager",
                 logical_rank: int, replica_id: int,
                 replica_comm: "BoundComm",
                 scheduler: _t.Optional[Scheduler] = None,
                 copy_strategy: CopyStrategy = CopyStrategy.LAZY,
                 task_overhead: float = 0.5e-6):
        super().__init__(ctx)
        self.manager = manager
        self.lrank = logical_rank
        self.rid = replica_id
        self.rcomm = replica_comm  # replica-set communicator (updates)
        self.scheduler = scheduler or StaticBlockScheduler()
        self.copy_strategy = copy_strategy
        #: CPU cost per task for runtime bookkeeping (scheduling, posting
        #: the update sends/receives).  This is the "synchronization
        #: between replicas" overhead §V-B cites against fine task
        #: granularity; the native/SDR paths run the unmodified kernels
        #: and pay nothing.
        self.task_overhead = task_overhead

    # ------------------------------------------------------------ hooks
    def _emit(self, name: str, **kw: _t.Any) -> None:
        self.manager.hooks.emit(name, logical_rank=self.lrank,
                                replica_id=self.rid,
                                section=self.section_index, **kw)

    # --------------------------------------------------------- protocol
    def _alive_rids(self) -> _t.List[int]:
        return [r.replica_id
                for r in self.manager.alive_replicas(self.lrank)]

    def _run_section(self, sec: SectionState):
        ctx = self.ctx
        self._emit("section_enter", n_tasks=len(sec.tasks))
        if not sec.tasks:
            self._emit("section_exit", n_tasks=0)
            return
        # -- schedule (Algorithm 1, line 24; deterministic across
        #    replicas: pure function of task list + live replica set)
        alive = self._alive_rids()
        assignment = self.scheduler.assign(sec.tasks, alive)
        for task, rid in zip(sec.tasks, assignment):
            task.executor = rid
        my_tasks = [t for t in sec.tasks if t.executor == self.rid]
        remote_tasks = [t for t in sec.tasks if t.executor != self.rid]
        if self.task_overhead:
            yield ctx.sleep(self.task_overhead * len(sec.tasks))

        # -- inout protection copies
        copy_bytes = 0
        if self.copy_strategy is CopyStrategy.EAGER:
            # §III-C: copy at instantiation time, on every replica.
            for task in sec.tasks:
                copy_bytes += task.take_copies(task.tdef.inout_args)
        elif self.copy_strategy is CopyStrategy.LAZY:
            # Algorithm 1, lines 37–38: receivers copy before receiving.
            for task in remote_tasks:
                copy_bytes += task.take_copies(task.tdef.inout_args)
        if copy_bytes:
            self.stats.copy_count += 1
            self.stats.copy_bytes += copy_bytes
            before = ctx.now
            yield ctx.memcpy(copy_bytes)
            self.stats.copy_time += ctx.now - before

        # -- §V-A overlap: post reception requests for ALL remote
        #    updates on section entry...
        recv_reqs: _t.List[Request] = []
        for task in remote_tasks:
            recv_reqs.extend(self._post_update_recvs(task, task.executor))
        # -- ...execute local tasks in launch order, posting each task's
        #    update sends as soon as it completes...
        send_reqs: _t.List[Request] = []
        if self._batchable(my_tasks):
            send_reqs = yield from self._execute_tasks_batched(my_tasks)
        else:
            for task in my_tasks:
                send_reqs.extend((yield from self._execute_task(task)))
        t_local_done = ctx.now
        # -- ...and complete everything with one Waitall, recovering
        #    from replica failures as they surface.
        yield from self._waitall_with_recovery(sec, recv_reqs + send_reqs)
        self.stats.exposed_update_time += ctx.now - t_local_done
        self._emit("section_exit", n_tasks=len(sec.tasks))

    # ------------------------------------------------------ local tasks
    def _batchable(self, my_tasks: _t.Sequence[LaunchedTask]) -> bool:
        """Whether this replica's local run may batch (split on send).

        Mirrors :class:`LocalIntraRuntime`'s oracle conditions (toggle,
        nothing to batch, trace hook installed) plus one of its own: a
        subscriber to the per-task ``task_executed`` hook — or a
        recording hook bus — observes protocol points *inside* the local
        stretch, whose interleaving only the task-by-task path
        reproduces exactly.  ``update_injected`` subscribers are fine
        either way: that hook fires from a transfer-completion callback
        whose time is fixed by the ``isend`` post time, which
        split-on-send keeps exact.
        """
        if not BATCH_SECTIONS or len(my_tasks) < 2:
            return False
        if self.ctx.sim._trace is not None:
            return False
        hooks = self.manager.hooks
        return not (hooks.record or hooks.has_handlers("task_executed"))

    def _has_live_peer(self) -> bool:
        return any(r.replica_id != self.rid
                   for r in self.manager.alive_replicas(self.lrank))

    def _execute_task(self, task: LaunchedTask):
        """Algorithm 1, ``execute_task`` (lines 29–35): restore inout
        copies, run, post updates to all other correct replicas."""
        restored = task.restore_copies()
        if restored:
            before = self.ctx.now
            yield self.ctx.memcpy(restored)
            self.stats.copy_time += self.ctx.now - before
        yield from self._execute_fn(task)
        task.executed_locally = True
        task.done = True
        task.applied.update(task.tdef.update_args)
        self._emit("task_executed", task=task.index)
        return self._post_update_sends(task)

    def _post_update_sends(self, task: LaunchedTask) -> _t.List[Request]:
        """Post this task's update messages to every *currently* live
        sibling (Algorithm 1, lines 33–35).  Shared by the task-by-task
        and batched paths; the batched path calls it at exactly the
        virtual time the oracle would (split on send), so re-reading the
        live set here keeps mid-stretch sibling deaths exact too."""
        reqs: _t.List[Request] = []
        for rid in self._alive_rids():
            if rid == self.rid:
                continue
            for arg in task.tdef.update_args:
                req = self.rcomm.isend(task.vars[arg], dest=rid,
                                       tag=self._update_tag(task, arg))
                self._watch_injection(task, arg, req)
                self.stats.update_msgs_sent += 1
                self.stats.update_bytes_sent += int(task.vars[arg].nbytes)
                reqs.append(req)
        return reqs

    def _execute_tasks_batched(self, my_tasks: _t.Sequence[LaunchedTask]):
        """Run the replica's local tasks as multi-segment charge
        descriptors, **splitting the batch at every update send**.

        Planning walks the launch-order run of local tasks, collecting
        each task's segments — the `inout`-restore memcpy (if any
        protection copy exists) followed by the roofline kernel — and
        cuts the sub-batch *after* the first task that will post update
        messages: its ``isend``\\ s must hit the transport at the exact
        virtual time the task-by-task oracle posts them, because
        everything downstream (injection time, the ``update_injected``
        crash window of Figure 2, receiver apply times) is a function of
        the post time.  Each sub-batch is then one
        :meth:`~repro.mpi.world.ProcContext.charge_batch` wake instead
        of up to two engine events per task.

        All side effects — restores, task functions, hook emissions,
        send posts — are deferred to the sub-batch wake and run in
        oracle order; per-task statistics replay from the returned
        stamps with unchanged float arithmetic, so results are
        bit-identical.  A kill landing mid-wake behaves like
        ``compute_batch``'s "split on interrupt": the sub-batch's side
        effects never run, and none were observable before the wake —
        its only sends *are* the split point.  Mid-stretch sibling
        deaths are exact because :meth:`_post_update_sends` re-reads the
        live set at post time; siblings cannot *join* mid-section
        (restart handovers happen at step boundaries), so a "sends
        nothing" plan never under-posts.
        """
        ctx = self.ctx
        sim = ctx.sim
        stats = self.stats
        send_reqs: _t.List[Request] = []
        n = len(my_tasks)
        start = 0
        while start < n:
            segments: _t.List[_t.Tuple[int, float, float]] = []
            plan: _t.List[_t.Tuple[LaunchedTask, int, int]] = []
            sender: _t.Optional[LaunchedTask] = None
            stop = start
            while stop < n:
                task = my_tasks[stop]
                restore_seg = -1
                restore_bytes = task.restore_nbytes()
                if restore_bytes:
                    restore_seg = len(segments)
                    segments.append((SEG_MEMCPY, restore_bytes, 0.0))
                flops, nbytes = task.tdef.cost(*task.vars)
                compute_seg = -1
                if flops or nbytes:
                    compute_seg = len(segments)
                    segments.append((SEG_COMPUTE, flops, nbytes))
                plan.append((task, restore_seg, compute_seg))
                stop += 1
                if task.tdef.update_args and self._has_live_peer():
                    sender = task
                    break  # split on send
            t_prev = sim.now
            event, stamps = ctx.charge_batch(segments)
            if event is not None:
                yield event
            # a kill during the wake lands here as GeneratorExit: the
            # sub-batch's deferred effects never run — and none were due
            # before the wake (its sends are exactly the split point)
            for task, restore_seg, compute_seg in plan:
                if restore_seg >= 0:
                    task.restore_copies()
                    stats.copy_time += stamps[restore_seg] - t_prev
                    t_prev = stamps[restore_seg]
                if compute_seg >= 0:
                    stats.task_compute_time += stamps[compute_seg] - t_prev
                    t_prev = stamps[compute_seg]
                task.tdef.fn(*task.vars)
                stats.tasks_executed += 1
                task.executed_locally = True
                task.done = True
                task.applied.update(task.tdef.update_args)
                self._emit("task_executed", task=task.index)
            if sender is not None:
                send_reqs.extend(self._post_update_sends(sender))
            start = stop
        return send_reqs

    def _update_tag(self, task: LaunchedTask, arg: int) -> int:
        # The section index is baked into the tag so a stale update from
        # a failure-window schedule disagreement can never match a later
        # section's receive (replicas traverse sections in the same
        # deterministic order, so the section counter agrees everywhere).
        return ((self.section_index * 1_000_000)
                + task.index * MAX_ARGS + arg)

    def _watch_injection(self, task: LaunchedTask, arg: int,
                         req: Request) -> None:
        """Emit the ``update_injected`` hook when the update message hits
        the wire — the precise crash point of the Figure 2 scenario."""
        idx = task.index

        def cb(_ev) -> None:
            self._emit("update_injected", task=idx, arg=arg)

        if not req.event.processed:
            req.event.add_callback(cb)

    # ----------------------------------------------------- remote tasks
    def _post_update_recvs(self, task: LaunchedTask,
                           executor_rid: int) -> _t.List[Request]:
        """Algorithm 1, ``receive_task_update`` (lines 36–42), split into
        its post-receives half; application happens in completion
        callbacks so transfers overlap local execution (§V-A)."""
        reqs = []
        for arg in task.tdef.update_args:
            req = self.rcomm.irecv(source=executor_rid,
                                   tag=self._update_tag(task, arg))
            self._attach_apply(task, arg, req)
            reqs.append(req)
        return reqs

    def _attach_apply(self, task: LaunchedTask, arg: int,
                      req: Request) -> None:
        def cb(ev) -> None:
            if ev.exception is not None:
                return  # failure handled by the recovery path
            if task.done:
                return  # task already re-executed locally; stale update
            payload, _status = ev.value
            self._apply_update(task, arg, payload)

        assert not req.event.processed
        req.event.add_callback(cb)

    def _apply_update(self, task: LaunchedTask, arg: int,
                      payload: np.ndarray) -> None:
        if self.copy_strategy is CopyStrategy.ATOMIC:
            task.buffered[arg] = payload
            if set(task.buffered) == set(task.tdef.update_args):
                for a, data in task.buffered.items():
                    np.copyto(task.vars[a], data)
                    task.applied.add(a)
                    self.stats.update_bytes_applied += int(data.nbytes)
                    self.stats.update_msgs_applied += 1
                task.buffered.clear()
                task.done = True
            return
        np.copyto(task.vars[arg], payload)
        task.applied.add(arg)
        self.stats.update_msgs_applied += 1
        self.stats.update_bytes_applied += int(payload.nbytes)
        if task.applied >= set(task.tdef.update_args):
            task.done = True

    # -------------------------------------------------------- recovery
    def _waitall_with_recovery(self, sec: SectionState,
                               reqs: _t.List[Request]):
        """Complete all update transfers; on replica failure, re-execute
        the dead executor's unfinished tasks locally.

        This is the coordination-free variant of Algorithm 1's recovery
        loop (lines 21–28): instead of re-scheduling a dead replica's
        tasks across survivors (which requires survivors to agree on who
        re-executes), every replica lacking a task's full update simply
        executes that task itself — the option §III-B2 notes as "execute
        the task locally".  For the paper's replication degree of 2 the
        two strategies coincide: there is a single survivor.
        """
        outstanding = list(reqs)
        while outstanding:
            cond = self.ctx.sim.all_of([r.event for r in outstanding])
            try:
                yield cond
                return
            except ConditionError as err:
                if not isinstance(err.cause, RankFailure):
                    raise
                self.stats.recoveries += 1
                self._emit("recovery", n_outstanding=len(outstanding))
                yield from self._reexecute_missing(sec)
                outstanding = [r for r in outstanding
                               if not r.event.triggered]

    def _reexecute_missing(self, sec: SectionState):
        """Execute locally every task whose executor died before this
        replica obtained the full update."""
        alive = set(self._alive_rids())
        for task in sec.tasks:
            if task.done or task.executor in alive:
                continue
            restored = task.restore_copies()
            if restored:
                before = self.ctx.now
                yield self.ctx.memcpy(restored)
                self.stats.copy_time += self.ctx.now - before
            elif (self.copy_strategy is CopyStrategy.NONE
                  and task.applied and task.tdef.inout_args):
                # Deliberately unprotected: this re-execution reads
                # partially updated inout state — the incorrect run of
                # Figure 2b.  (No restore possible; fall through.)
                pass
            task.buffered.clear()
            yield from self._execute_fn(task)
            task.executed_locally = True
            task.done = True
            task.applied.update(task.tdef.update_args)
            self.stats.tasks_reexecuted += 1
            self._emit("task_reexecuted", task=task.index)
