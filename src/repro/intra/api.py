"""Public intra-parallelization API and the three execution modes.

Paper-faithful free functions (§III-C)::

    Intra_Section_begin(ctx)
    tid = Intra_Task_register(ctx, fn, tags, cost)
    Intra_Task_launch(ctx, tid, [vars...])
    yield from Intra_Section_end(ctx)

and mode-aware job launchers.  Application programs are written *once*
against this API and run unchanged in the paper's three configurations:

* ``mode="native"``   — plain MPI, every task executes locally
  (the "Open MPI" bars);
* ``mode="sdr"``      — classic state-machine replication, every replica
  executes every task (the "SDR-MPI" bars);
* ``mode="intra"``    — replication with work sharing (the "intra" bars).
"""

from __future__ import annotations

import typing as _t

from ..mpi.world import MpiWorld, launch_job
from ..netmodel import Slot
from ..replication.manager import (ReplicatedJob, ReplicationManager,
                                   launch_replicated_job)
from .runtime import IntraRuntime, LocalIntraRuntime
from .scheduler import Scheduler
from .task import CopyStrategy, CostFn, Tag, zero_cost

MODES = ("native", "sdr", "intra")


# ----------------------------------------------------- paper-style API
def Intra_Section_begin(ctx) -> None:
    """Open an intra-parallel section (paper §III-C)."""
    _runtime(ctx).section_begin()


def Intra_Task_register(ctx, fn: _t.Callable[..., _t.Any],
                        tags: _t.Sequence[_t.Union[Tag, str]],
                        cost: CostFn = zero_cost) -> int:
    """Register a task type; returns its id (paper §III-C)."""
    return _runtime(ctx).task_register(fn, tags, cost)


def Intra_Task_launch(ctx, task_id: int,
                      vars: _t.Sequence[_t.Any]) -> None:
    """Instantiate a registered task with concrete variables."""
    _runtime(ctx).task_launch(task_id, vars)


def Intra_Section_end(ctx):
    """Close the section: execute/share tasks, synchronise replicas.

    Generator — call as ``yield from Intra_Section_end(ctx)``.
    """
    yield from _runtime(ctx).section_end()


def _runtime(ctx):
    if ctx.intra is None:
        raise RuntimeError(
            "no intra runtime attached to this process; launch the "
            "program through repro.intra.api launchers (launch_native_job"
            " / launch_sdr_job / launch_intra_job)")
    return ctx.intra


# ------------------------------------------------------------ launchers
def launch_native_job(world: MpiWorld, program: _t.Callable,
                      n_ranks: int,
                      placement: _t.Optional[_t.Sequence[Slot]] = None,
                      args: _t.Tuple = (),
                      kwargs: _t.Optional[dict] = None):
    """Plain MPI job with a local intra runtime on each rank (tasks run
    sequentially in place — the unmodified-Open-MPI baseline)."""

    def wrapped(ctx, comm, *a, **kw):
        ctx.intra = LocalIntraRuntime(ctx)
        result = yield from program(ctx, comm, *a, **kw)
        return result

    return launch_job(world, wrapped, n_ranks, placement=placement,
                      args=args, kwargs=kwargs)


def launch_sdr_job(world: MpiWorld, program: _t.Callable, n_logical: int,
                   degree: int = 2, spread: int = 1,
                   fd_delay: float = 50e-6,
                   placements: _t.Optional[_t.Sequence] = None,
                   args: _t.Tuple = (), kwargs: _t.Optional[dict] = None,
                   ) -> ReplicatedJob:
    """Classic active replication (SDR-MPI baseline): every replica
    executes every task of every section."""

    def wrapped(ctx, comm, *a, **kw):
        ctx.intra = LocalIntraRuntime(ctx)
        result = yield from program(ctx, comm, *a, **kw)
        return result

    return launch_replicated_job(world, wrapped, n_logical, degree=degree,
                                 spread=spread, fd_delay=fd_delay,
                                 placements=placements, args=args,
                                 kwargs=kwargs)


def launch_intra_job(world: MpiWorld, program: _t.Callable,
                     n_logical: int, degree: int = 2, spread: int = 1,
                     fd_delay: float = 50e-6,
                     placements: _t.Optional[_t.Sequence] = None,
                     scheduler: _t.Optional[Scheduler] = None,
                     copy_strategy: CopyStrategy = CopyStrategy.LAZY,
                     task_overhead: float = 0.5e-6,
                     args: _t.Tuple = (),
                     kwargs: _t.Optional[dict] = None) -> ReplicatedJob:
    """Replication with intra-parallelization: sections are split into
    tasks shared between the replicas of each logical rank."""

    def wrapped(ctx, comm, *a, **kw):
        manager: ReplicationManager = comm.manager
        rset = manager.replica_comms[comm.lrank].bind(ctx)
        ctx.intra = IntraRuntime(ctx, manager, comm.lrank, comm.rid,
                                 rset, scheduler=scheduler,
                                 copy_strategy=copy_strategy,
                                 task_overhead=task_overhead)
        result = yield from program(ctx, comm, *a, **kw)
        return result

    return launch_replicated_job(world, wrapped, n_logical, degree=degree,
                                 spread=spread, fd_delay=fd_delay,
                                 placements=placements, args=args,
                                 kwargs=kwargs)


def launch_mode(mode: str, world: MpiWorld, program: _t.Callable,
                n_logical: int, **kw):
    """Uniform entry point used by the experiment harness.

    ``native`` launches ``n_logical`` plain ranks; ``sdr``/``intra``
    launch ``n_logical`` logical ranks with ``degree`` replicas each.
    Extra keyword arguments are forwarded to the specific launcher.
    """
    if mode == "native":
        kw.pop("degree", None)
        kw.pop("fd_delay", None)
        kw.pop("spread", None)
        kw.pop("scheduler", None)
        kw.pop("copy_strategy", None)
        kw.pop("task_overhead", None)
        kw.pop("placements", None)
        return launch_native_job(world, program, n_logical, **kw)
    if mode == "sdr":
        kw.pop("scheduler", None)
        kw.pop("copy_strategy", None)
        kw.pop("task_overhead", None)
        return launch_sdr_job(world, program, n_logical, **kw)
    if mode == "intra":
        return launch_intra_job(world, program, n_logical, **kw)
    raise ValueError(f"unknown mode {mode!r}; expected one of {MODES}")
