"""Runtime statistics for intra-parallel sections.

These counters produce the measurements the paper reports: section wall
time (the "sections" bars of Figure 6), the *exposed* update-transfer
time (the dashed "intra updates" area of Figure 5a — time a replica
spends finishing update transfers after its last local task), and the
extra-copy overhead of `inout` variables (the 6% figure quoted for GTC).

Batched-accounting contract: every counter here must be *replayable*
from a multi-segment charge descriptor's per-segment stamps with the
exact float arithmetic the task-by-task path performs (see
:meth:`repro.mpi.world.ProcContext.charge_batch` and the batched
executors in :mod:`repro.intra.runtime`) — the golden-trace tests
assert ``IntraStats`` equality bit for bit between the batched and
oracle paths, so a new time counter must be accumulated as a difference
of segment stamps, never recomputed from costs.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass
class IntraStats:
    """Cumulative per-replica counters across all sections."""

    sections: int = 0
    tasks_launched: int = 0
    tasks_executed: int = 0
    tasks_reexecuted: int = 0
    #: wall-clock time spent inside section_end (compute + updates)
    section_time: float = 0.0
    #: roofline compute time charged for task execution
    task_compute_time: float = 0.0
    #: wall time from "my last local task finished" to "all update
    #: transfers of the section complete" — the non-overlapped update
    #: transfer cost (Figure 5a, dashed)
    exposed_update_time: float = 0.0
    #: update traffic posted by this replica
    update_msgs_sent: int = 0
    update_bytes_sent: int = 0
    #: update traffic applied by this replica
    update_msgs_applied: int = 0
    update_bytes_applied: int = 0
    #: `inout` protection copies
    copy_count: int = 0
    copy_bytes: int = 0
    copy_time: float = 0.0
    #: recoveries triggered by replica failures
    recoveries: int = 0

    def merge(self, other: "IntraStats") -> "IntraStats":
        """Element-wise sum (for aggregating replicas/ranks)."""
        out = IntraStats()
        for f in dataclasses.fields(IntraStats):
            setattr(out, f.name,
                    getattr(self, f.name) + getattr(other, f.name))
        return out
