"""A compact section-builder API (the §VI future-work direction).

The paper notes its register/launch interface "should be seen as a
proof-of-concept" and that a compiler-assisted approach (à la OpenMP
tasks) could reduce source changes further.  Python lets us get most of
the way with a small builder that registers task types on first use and
infers slicing from a partitioner::

    sec = section(ctx)
    for sl in split_range(n, 8):
        sec.run(waxpby, [2.0, x[sl], 0.5, y[sl], w[sl]],
                tags=[IN, IN, IN, IN, OUT], cost=waxpby_cost)
    yield from sec.end()

or, for the common map-over-slices pattern, a single call::

    yield from parallel_for(ctx, waxpby, [2.0, x, 0.5, y, w],
                            tags=[IN, IN, IN, IN, OUT],
                            cost=waxpby_cost, n_tasks=8)

``parallel_for`` slices every array argument consistently (scalars are
broadcast), which is exactly the Figure 4 transformation done by hand
in the paper.
"""

from __future__ import annotations

import typing as _t

import numpy as np

from ..kernels.partition import split_range
from .task import CostFn, Tag, zero_cost

#: re-exported for terser call sites
IN, OUT, INOUT = Tag.IN, Tag.OUT, Tag.INOUT


class SectionBuilder:
    """Fluent wrapper over one intra-parallel section."""

    def __init__(self, ctx):
        self.ctx = ctx
        self._runtime = ctx.intra
        if self._runtime is None:
            raise RuntimeError("no intra runtime attached; use the "
                               "launchers in repro.intra.api")
        self._runtime.section_begin()
        #: task-type cache: (fn, tags tuple) -> registered id
        self._ids: _t.Dict[_t.Tuple[_t.Any, _t.Tuple[Tag, ...]], int] = {}

    def run(self, fn: _t.Callable[..., _t.Any], vars: _t.Sequence[_t.Any],
            tags: _t.Sequence[_t.Union[Tag, str]],
            cost: CostFn = zero_cost) -> "SectionBuilder":
        """Launch one task, registering its type on first use.
        Chainable."""
        norm = tuple(t if isinstance(t, Tag) else Tag(t) for t in tags)
        key = (fn, norm)
        if key not in self._ids:
            self._ids[key] = self._runtime.task_register(fn, list(norm),
                                                         cost)
        self._runtime.task_launch(self._ids[key], list(vars))
        return self

    def end(self):
        """Close the section (generator: ``yield from sec.end()``)."""
        yield from self._runtime.section_end()


def section(ctx) -> SectionBuilder:
    """Open an intra-parallel section with the builder API."""
    return SectionBuilder(ctx)


def parallel_for(ctx, fn: _t.Callable[..., _t.Any],
                 vars: _t.Sequence[_t.Any],
                 tags: _t.Sequence[_t.Union[Tag, str]],
                 cost: CostFn = zero_cost, n_tasks: int = 8):
    """One-call section: slice every array argument into ``n_tasks``
    contiguous blocks and launch one task per block (Figure 4's
    transformation, automated).

    All array arguments must have the same length along axis 0; scalars
    and 0-d values are passed unchanged to every task.  Generator —
    ``yield from parallel_for(...)``.
    """
    norm = [t if isinstance(t, Tag) else Tag(t) for t in tags]
    if len(norm) != len(vars):
        raise ValueError(f"{len(vars)} vars for {len(norm)} tags")
    lengths = {v.shape[0] for v in vars if isinstance(v, np.ndarray)
               and v.ndim > 0}
    if not lengths:
        raise ValueError("parallel_for needs at least one array argument")
    if len(lengths) != 1:
        raise ValueError(f"array arguments disagree on length: {lengths}")
    # detlint: ignore[DET001] -- singleton set: len(lengths) == 1 was
    # just checked, so there is only one element to pop
    n = lengths.pop()
    sec = section(ctx)
    for sl in split_range(n, n_tasks):
        if sl.stop <= sl.start:
            continue
        sliced = [v[sl] if isinstance(v, np.ndarray) and v.ndim > 0 else v
                  for v in vars]
        sec.run(fn, sliced, tags=norm, cost=cost)
    yield from sec.end()
