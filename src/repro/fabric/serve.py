"""The fabric result service: cached simulations over HTTP.

``python -m repro.fabric.serve --root DIR`` exposes one fabric root
(stdlib :class:`~http.server.ThreadingHTTPServer`; no third-party
dependencies) so results can be *served* instead of recomputed:

``GET /healthz``
    200 liveness probe.
``GET /stats``
    200 — service hit/miss counters plus the store and queue
    snapshots.
``GET /result/<cache_key>``
    200 with the lossless :class:`~repro.results.RunResult` JSON on a
    warm hit; 202 (and an enqueue for the workers) when the key is
    known but cold; 404 when the fabric has never seen the key —
    resolve it through ``/scenario/<name>`` first.
``GET /scenario/<name>``
    Resolves a registry name (grid members included) to its cache key,
    records the binding, then behaves like ``/result``: 200 on warm,
    202 + enqueue on cold, 404 (with suggestions) for unknown names.

Responses are JSON; a warm ``RunResult`` round-trips bytes-exactly
through :meth:`~repro.results.RunResult.from_json`, which is what
:class:`~repro.fabric.client.FabricClient` relies on.  The service
never simulates anything itself — cold points go on the durable queue
for ``python -m repro.fabric.worker`` daemons, keeping request latency
flat no matter how expensive the scenario is.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import threading
import typing as _t
import urllib.parse
import warnings
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from .core import Fabric

__all__ = ["FabricServer", "main", "make_server"]


class FabricServer(ThreadingHTTPServer):
    """One fabric root behind HTTP; handler threads share the fabric
    (per-thread SQLite connections underneath) and the hit/miss
    counters."""

    daemon_threads = True

    def __init__(self, address: _t.Tuple[str, int], fabric: Fabric, *,
                 quiet: bool = True) -> None:
        super().__init__(address, _Handler)
        self.fabric = fabric
        self.quiet = quiet
        self.hits = 0
        self.misses = 0
        self._counter_lock = threading.Lock()

    def count(self, hit: bool) -> None:
        with self._counter_lock:
            if hit:
                self.hits += 1
            else:
                self.misses += 1

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


class _Handler(BaseHTTPRequestHandler):
    server: FabricServer  # narrowed — we are only ever FabricServer's

    # ------------------------------------------------------------ plumbing
    def log_message(self, fmt: str, *args: _t.Any) -> None:
        if not self.server.quiet:
            super().log_message(fmt, *args)

    def _send_json(self, status: int, payload: _t.Mapping[str, _t.Any]
                   ) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_result_json(self, text: str) -> None:
        body = text.encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    # -------------------------------------------------------------- routes
    def do_GET(self) -> None:  # noqa: N802 — http.server's contract
        path = urllib.parse.urlsplit(self.path).path
        try:
            if path in ("/healthz", "/healthz/"):
                return self._send_json(200, {"status": "ok"})
            if path in ("/stats", "/stats/"):
                return self._do_stats()
            if path.startswith("/result/"):
                return self._do_result(path[len("/result/"):])
            if path.startswith("/scenario/"):
                # scenario names contain "/" (grid members), so the
                # whole remainder is the name
                return self._do_scenario(
                    urllib.parse.unquote(path[len("/scenario/"):]))
            self._send_json(404, {
                "error": f"no such route: {path}",
                "routes": ["/healthz", "/stats", "/result/<cache_key>",
                           "/scenario/<name>"]})
        except BrokenPipeError:
            pass  # client went away mid-response; nothing to salvage
        except Exception as exc:  # noqa: BLE001 — one bad request must
            # not kill the handler thread silently
            self._send_json(500, {
                "error": f"{type(exc).__name__}: {exc}"})

    def _do_stats(self) -> None:
        fabric = self.server.fabric
        self._send_json(200, {
            "hits": self.server.hits,
            "misses": self.server.misses,
            **fabric.stats()})

    def _serve_key(self, key: str, scenario_json: str) -> None:
        """Common tail of both routes: warm → 200 RunResult JSON, cold
        → enqueue + 202."""
        fabric = self.server.fabric
        with warnings.catch_warnings():
            # corrupt-entry quarantine warns; a service has no console
            # to warn to — the 202 + recompute IS the handling
            warnings.simplefilter("ignore", RuntimeWarning)
            mode_run = fabric.load_result(key)
        if mode_run is not None:
            from ..results import RunResult
            from ..scenarios.spec import Scenario
            scenario = Scenario.from_json(scenario_json)
            result = RunResult.from_mode_run(
                mode_run, scenario, cache_key=key, cache_hit=True)
            self.server.count(hit=True)
            return self._send_result_json(result.to_json())
        fabric.queue.enqueue(key, scenario_json)
        self.server.count(hit=False)
        self._send_json(202, {
            "status": "pending", "cache_key": key,
            "hint": "a fabric worker will compute this point; "
                    "poll again"})

    def _do_result(self, key: str) -> None:
        fabric = self.server.fabric
        scenario_json = fabric.queue.scenario_for(key)
        if scenario_json is None:
            self.server.count(hit=False)
            return self._send_json(404, {
                "error": f"unknown cache key {key!r}",
                "hint": "resolve it via /scenario/<name> first so the "
                        "fabric learns the key ↔ scenario binding"})
        self._serve_key(key, scenario_json)

    def _do_scenario(self, name: str) -> None:
        from ..api import scenario as resolve_scenario
        from ..scenarios.registry import UnknownScenarioError
        try:
            scenario = resolve_scenario(name)
        except UnknownScenarioError as exc:
            self.server.count(hit=False)
            return self._send_json(404, {
                "error": f"unknown scenario {name!r}",
                "suggestions": list(getattr(exc, "suggestions", ()))})
        fabric = self.server.fabric
        key = fabric.record_scenario(scenario)
        self._serve_key(key, scenario.to_json())


def make_server(fabric: Fabric, host: str = "127.0.0.1",
                port: int = 0, *, quiet: bool = True) -> FabricServer:
    """Bind (``port=0`` → ephemeral) but do not serve; callers run
    :meth:`~socketserver.BaseServer.serve_forever` on a thread of
    their choosing and ``shutdown()``/``server_close()`` when done."""
    return FabricServer((host, port), fabric, quiet=quiet)


def main(argv: _t.Optional[_t.Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fabric.serve",
        description="Serve a fabric root over HTTP: warm results "
                    "stream back as lossless RunResult JSON, cold "
                    "points are queued for the workers.")
    parser.add_argument("--root", required=True, metavar="DIR",
                        help="the fabric root (shared store + queue)")
    parser.add_argument("--backend", choices=("file", "sqlite"),
                        default=None,
                        help="result-store backend (default: the "
                             "REPRO_CACHE_BACKEND selection)")
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default: 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8752,
                        help="bind port; 0 picks an ephemeral one "
                             "(default: 8752)")
    parser.add_argument("--verbose", action="store_true",
                        help="log each request to stderr")
    args = parser.parse_args(argv)

    fabric = Fabric(args.root, backend=args.backend)
    server = make_server(fabric, args.host, args.port,
                         quiet=not args.verbose)
    print(f"fabric service on {server.url} "
          f"(root={pathlib.Path(args.root)}, "
          f"backend={fabric.store.backend})",
          file=sys.stderr, flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        return 130
    finally:
        server.server_close()
        fabric.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
