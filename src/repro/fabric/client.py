""":class:`FabricClient` — talk to a running fabric result service.

Stdlib-only (:mod:`urllib.request`), mirroring the service's routes:
``healthz``/``stats`` for probes, :meth:`FabricClient.result` for raw
key lookups, and :meth:`FabricClient.run` /
:meth:`FabricClient.sweep`, which resolve scenario *names*, wait out
202-pending responses while the workers compute, and decode the warm
payloads losslessly via :meth:`repro.results.RunResult.from_json` —
so a client-side sweep yields the same :class:`~repro.results.RunResult`
objects a local ``repro.sweep`` would.
"""

from __future__ import annotations

import json
import time
import typing as _t
import urllib.error
import urllib.parse
import urllib.request

__all__ = ["FabricClient", "FabricServiceError", "FabricTimeout"]


class FabricServiceError(RuntimeError):
    """The service answered with an error status (404/500/…)."""

    def __init__(self, status: int, payload: _t.Mapping[str, _t.Any]):
        self.status = status
        self.payload = dict(payload)
        detail = payload.get("error") or json.dumps(payload,
                                                   sort_keys=True)
        super().__init__(f"fabric service returned {status}: {detail}")


class FabricTimeout(TimeoutError):
    """A pending point did not turn warm within the wait budget."""


class FabricClient:
    """Client for one ``python -m repro.fabric.serve`` endpoint.

    ``base_url`` is the service root (``http://host:port``); ``poll``
    is the cadence for waiting out 202-pending responses and
    ``timeout`` the per-request socket timeout."""

    def __init__(self, base_url: str, *, poll: float = 0.1,
                 timeout: float = 10.0) -> None:
        if poll <= 0:
            raise ValueError("poll must be positive")
        self.base_url = base_url.rstrip("/")
        self.poll = poll
        self.timeout = timeout

    def __repr__(self) -> str:
        return f"FabricClient({self.base_url!r})"

    # ------------------------------------------------------------- wire
    def _get(self, route: str) -> _t.Tuple[int, str]:
        """One GET; returns ``(status, body_text)`` — 4xx/5xx included
        (the 202-pending protocol makes non-200s routine)."""
        url = f"{self.base_url}{route}"
        try:
            with urllib.request.urlopen(url,
                                        timeout=self.timeout) as resp:
                return resp.status, resp.read().decode("utf-8")
        except urllib.error.HTTPError as err:
            return err.code, err.read().decode("utf-8")

    def _get_json(self, route: str
                  ) -> _t.Tuple[int, _t.Dict[str, _t.Any]]:
        status, text = self._get(route)
        try:
            payload = json.loads(text)
        except json.JSONDecodeError:
            payload = {"error": f"non-JSON body: {text[:200]!r}"}
        return status, payload

    # ------------------------------------------------------------ probes
    def healthz(self) -> bool:
        try:
            status, _ = self._get("/healthz")
        except (urllib.error.URLError, OSError):
            return False
        return status == 200

    def stats(self) -> _t.Dict[str, _t.Any]:
        status, payload = self._get_json("/stats")
        if status != 200:
            raise FabricServiceError(status, payload)
        return payload

    # ----------------------------------------------------------- results
    def result(self, cache_key: str,
               wait: bool = False,
               wait_timeout: float = 60.0) -> _t.Optional[_t.Any]:
        """The :class:`~repro.results.RunResult` for a cache key, or
        ``None`` while it is pending (``wait=False``).  ``wait=True``
        polls until warm or ``wait_timeout`` elapses
        (:class:`FabricTimeout`).  Unknown keys raise
        :class:`FabricServiceError` (404)."""
        return self._fetch(f"/result/{cache_key}", wait, wait_timeout)

    def run(self, name: str, wait: bool = True,
            wait_timeout: float = 60.0) -> _t.Optional[_t.Any]:
        """Resolve a scenario name through the service; by default
        waits for the workers to warm a cold point."""
        quoted = urllib.parse.quote(name, safe="")
        return self._fetch(f"/scenario/{quoted}", wait, wait_timeout)

    def sweep(self, names: _t.Iterable[str], *,
              wait_timeout: float = 120.0) -> _t.List[_t.Any]:
        """Fetch a family of scenarios in input order.  The first pass
        requests every name (enqueueing all cold points at once so the
        workers overlap them), then waits each out."""
        pending = [(name, self.run(name, wait=False))
                   for name in names]
        out: _t.List[_t.Any] = []
        for name, result in pending:
            if result is None:
                result = self.run(name, wait=True,
                                  wait_timeout=wait_timeout)
            out.append(result)
        return out

    def _fetch(self, route: str, wait: bool,
               wait_timeout: float) -> _t.Optional[_t.Any]:
        from ..results import RunResult
        deadline = time.monotonic() + wait_timeout
        while True:
            status, text = self._get(route)
            if status == 200:
                return RunResult.from_json(text)
            if status == 202:
                if not wait:
                    return None
                if time.monotonic() >= deadline:
                    raise FabricTimeout(
                        f"point still pending after {wait_timeout}s "
                        f"({self.base_url}{route})")
                time.sleep(self.poll)
                continue
            try:
                payload = json.loads(text)
            except json.JSONDecodeError:
                payload = {"error": f"non-JSON body: {text[:200]!r}"}
            raise FabricServiceError(status, payload)
