"""The fabric worker: pull scenario hashes, run them, push bytes.

``python -m repro.fabric.worker --root DIR`` starts one daemon against
a fabric root.  The loop is deliberately tiny:

1. :meth:`~repro.fabric.queue.WorkQueue.lease` the oldest ready key;
2. decode the recorded scenario JSON and run it through the *same*
   execution path every sweep uses
   (:func:`repro.scenarios.run._run_scenario` — determinism makes the
   result a pure function of the scenario, whoever computes it);
3. :meth:`~repro.fabric.core.Fabric.put_result` the pickled
   :class:`~repro.scenarios.run.ModeRun` bytes (byte-identical to what
   a serial cached sweep would store) and ``ack``.

A worker that is SIGKILLed mid-point loses nothing but its lease: the
queue re-readies the item after the lease expires (one ``worker-lost``
attempt, exponential backoff) and another worker re-runs it — the
re-run stores the *same bytes*, so resumption is invisible in the
results.  A run that raises charges a failed attempt via
:meth:`~repro.fabric.queue.WorkQueue.fail`; after ``max_attempts`` the
item parks as ``failed`` and waiting sweeps surface it as a
:class:`repro.perf.PointFailure`.

Any number of workers may share one root — the queue's SQLite
transactions arbitrate — which is the fan-out story: point-level
parallelism across processes and hosts that share a filesystem.
"""

from __future__ import annotations

import argparse
import os
import socket
import sys
import time
import typing as _t

from .core import Fabric
from .queue import Lease

__all__ = ["drain", "main", "process_one", "run_worker"]


def default_worker_id() -> str:
    """``host:pid`` — unique per live process, stable for its life
    (lease ownership checks key on it)."""
    return f"{socket.gethostname()}:{os.getpid()}"


def process_one(fabric: Fabric, worker_id: str,
                lease: _t.Optional[Lease] = None) -> _t.Optional[str]:
    """Lease and run one point; returns its key, or ``None`` when the
    queue had nothing ready.  A raising run is charged to the queue's
    retry budget and never propagates (one poisoned scenario must not
    take down the daemon)."""
    if lease is None:
        lease = fabric.queue.lease(worker_id, fabric.lease)
    if lease is None:
        return None
    try:
        from ..scenarios.run import _run_scenario
        from ..scenarios.spec import Scenario
        scenario = Scenario.from_json(lease.scenario_json)
        mode_run = _run_scenario(scenario)
    except Exception as exc:  # noqa: BLE001 — any point failure is
        # queue accounting, not a daemon crash
        fabric.queue.fail(lease.key, worker_id,
                          f"error: {type(exc).__name__}: {exc}")
        return lease.key
    fabric.put_result(lease.key, mode_run)
    fabric.queue.ack(lease.key, worker_id)
    return lease.key


def drain(fabric: Fabric, max_points: _t.Optional[int] = None,
          worker_id: _t.Optional[str] = None) -> int:
    """Process ready points inline until the queue yields none (no
    waiting on backoff delays or other workers' leases); returns the
    number processed."""
    worker_id = worker_id or default_worker_id()
    done = 0
    while max_points is None or done < max_points:
        if process_one(fabric, worker_id) is None:
            break
        done += 1
    return done


def run_worker(fabric: Fabric, *,
               worker_id: _t.Optional[str] = None,
               max_points: _t.Optional[int] = None,
               idle_exit: _t.Optional[float] = None,
               log: _t.Optional[_t.Callable[[str], None]] = None) -> int:
    """The daemon loop: drain the queue, sleep ``fabric.poll`` between
    empty polls, exit after ``idle_exit`` seconds with no work (or run
    forever), or after ``max_points`` points.  Returns the number of
    points processed."""
    worker_id = worker_id or default_worker_id()
    done = 0
    idle_since: _t.Optional[float] = None
    while max_points is None or done < max_points:
        key = process_one(fabric, worker_id)
        if key is not None:
            done += 1
            idle_since = None
            if log is not None:
                log(f"[{worker_id}] processed {key[:12]}… "
                    f"({done} total)")
            continue
        now = time.monotonic()
        if idle_since is None:
            idle_since = now
        if idle_exit is not None and now - idle_since >= idle_exit:
            break
        time.sleep(fabric.poll)
    return done


def main(argv: _t.Optional[_t.Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fabric.worker",
        description="Run one fabric worker daemon: lease queued "
                    "scenario hashes, simulate them, store the result "
                    "bytes.")
    parser.add_argument("--root", required=True, metavar="DIR",
                        help="the fabric root (shared store + queue)")
    parser.add_argument("--backend", choices=("file", "sqlite"),
                        default=None,
                        help="result-store backend (default: the "
                             "REPRO_CACHE_BACKEND selection)")
    parser.add_argument("--max-points", type=int, default=None,
                        metavar="N",
                        help="exit after processing N points")
    parser.add_argument("--idle-exit", type=float, default=None,
                        metavar="SECONDS",
                        help="exit after this long with an empty "
                             "queue (default: run forever)")
    parser.add_argument("--poll", type=float, default=0.05,
                        metavar="SECONDS",
                        help="sleep between empty queue polls "
                             "(default: 0.05)")
    parser.add_argument("--lease", type=float, default=60.0,
                        metavar="SECONDS",
                        help="per-point lease duration (default: 60)")
    parser.add_argument("--backoff", type=float, default=0.5,
                        metavar="SECONDS",
                        help="base retry backoff (default: 0.5)")
    parser.add_argument("--max-attempts", type=int, default=3,
                        metavar="N",
                        help="attempts before a point parks as failed "
                             "(default: 3)")
    parser.add_argument("--worker-id", default=None, metavar="ID",
                        help="lease-ownership identity "
                             "(default: host:pid)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-point progress lines")
    args = parser.parse_args(argv)
    if args.max_points is not None and args.max_points < 1:
        parser.error("--max-points must be >= 1")
    if args.poll <= 0 or args.lease <= 0:
        parser.error("--poll and --lease must be positive")

    fabric = Fabric(args.root, backend=args.backend, poll=args.poll,
                    lease=args.lease, max_attempts=args.max_attempts,
                    backoff=args.backoff)
    log = None if args.quiet else (
        lambda line: print(line, file=sys.stderr, flush=True))
    try:
        done = run_worker(fabric, worker_id=args.worker_id,
                          max_points=args.max_points,
                          idle_exit=args.idle_exit, log=log)
    except KeyboardInterrupt:
        return 130
    finally:
        fabric.close()
    if log is not None:
        log(f"worker exiting after {done} point(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
