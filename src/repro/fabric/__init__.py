""":mod:`repro.fabric` — the distributed sweep fabric.

Three layers, all stdlib-only, all sharing one *fabric root*
directory:

* **stores** (:mod:`repro.fabric.store`): the sweep cache behind a
  :class:`ResultStore` protocol — the pinned sharded-file layout plus
  an SQLite-indexed backend, selected by ``REPRO_CACHE_BACKEND`` /
  :func:`set_cache_backend`, byte-identical payloads either way;
* **queue + workers** (:mod:`repro.fabric.queue`,
  ``python -m repro.fabric.worker``): a durable SQLite work queue of
  scenario hashes with lease/ack/retry semantics, drained by any
  number of worker daemons;
* **service** (``python -m repro.fabric.serve``,
  :class:`FabricClient`): results over HTTP — warm hits stream
  straight out of the store, cold points queue for the workers.

``repro.sweep(..., fabric=Fabric(root))`` ties them together: warm
points serve immediately, cold points fan out to whatever workers
share the root, and a re-run resumes from everything they completed.

The store and queue modules import eagerly (pure stdlib, no repro
dependencies); :class:`Fabric`, :class:`FabricClient` and the
daemon/CLI modules load on first attribute access so that importing
:mod:`repro` stays cheap.
"""

from __future__ import annotations

import typing as _t

from .queue import Lease, QueueItem, QueueStats, WorkQueue
from .store import (CACHE_BACKENDS, CACHE_BACKEND_DEFAULT, FileStore,
                    ResultStore, SqliteStore, StoreStats,
                    get_cache_backend, open_store,
                    resolve_cache_backend, set_cache_backend)

__all__ = [
    "CACHE_BACKENDS",
    "CACHE_BACKEND_DEFAULT",
    "Fabric",
    "FabricClient",
    "FabricServiceError",
    "FabricTimeout",
    "FileStore",
    "Lease",
    "QueueItem",
    "QueueStats",
    "ResultStore",
    "SqliteStore",
    "StoreStats",
    "WorkQueue",
    "get_cache_backend",
    "open_store",
    "resolve_cache_backend",
    "set_cache_backend",
]

# lazily-resolved attribute → defining submodule (PEP 562), so that
# `import repro` never pays for the HTTP/worker layers
_LAZY = {
    "Fabric": "core",
    "FabricClient": "client",
    "FabricServiceError": "client",
    "FabricTimeout": "client",
}

if _t.TYPE_CHECKING:  # pragma: no cover — typing only
    from .client import (FabricClient, FabricServiceError,  # noqa: F401
                         FabricTimeout)
    from .core import Fabric  # noqa: F401


def __getattr__(name: str) -> _t.Any:
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}")
    import importlib
    value = getattr(
        importlib.import_module(f".{module}", __name__), name)
    globals()[name] = value  # cache: next access skips __getattr__
    return value


def __dir__() -> _t.List[str]:
    return sorted(set(globals()) | set(__all__))
