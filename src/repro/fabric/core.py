"""The :class:`Fabric` handle: one root directory = one fabric.

A fabric root holds a :class:`~repro.fabric.store.ResultStore` (the
``file`` shard tree and/or the ``sqlite`` database — same scenario-hash
keys, same bytes) plus the durable
:class:`~repro.fabric.queue.WorkQueue`.  Everything that cooperates on
a sweep — ``repro.sweep(..., fabric=...)``, ``python -m
repro.fabric.worker`` daemons, the ``python -m repro.fabric.serve``
result service — opens the same root and coordinates purely through
those two files, so any of them can die and restart without losing
completed work: that is what makes sweeps resumable.
"""

from __future__ import annotations

import pathlib
import pickle
import typing as _t
import warnings

from .queue import WorkQueue
from .store import ResultStore, open_store

__all__ = ["Fabric"]


class Fabric:
    """Handle on one fabric root (store + queue); cheap to construct,
    safe to share between threads (per-thread SQLite connections
    underneath)."""

    def __init__(self, root: _t.Union[str, pathlib.Path], *,
                 backend: _t.Optional[str] = None,
                 poll: float = 0.05,
                 lease: float = 60.0,
                 max_attempts: int = 3,
                 backoff: float = 0.5) -> None:
        """``backend`` selects the result store (``None`` → the
        process-wide ``REPRO_CACHE_BACKEND`` default); ``poll`` is the
        store-polling cadence of waiting sweeps and clients; ``lease``
        the per-point worker lease in seconds; ``max_attempts`` /
        ``backoff`` the queue's retry policy (the sweep driver's
        semantics: a lost worker or a raising run charges one attempt,
        retries back off exponentially)."""
        if poll <= 0:
            raise ValueError("poll must be positive")
        if lease <= 0:
            raise ValueError("lease must be positive")
        self.root = pathlib.Path(root)
        self.store: ResultStore = open_store(self.root, backend)
        self.queue = WorkQueue(self.root, max_attempts=max_attempts,
                               backoff=backoff)
        self.poll = poll
        self.lease = lease

    def __repr__(self) -> str:
        return (f"Fabric({str(self.root)!r}, "
                f"backend={self.store.backend!r})")

    # -------------------------------------------------------- scenarios
    def key_for(self, scenario: _t.Any) -> str:
        """The scenario's content-addressed cache key — identical to
        what the serial sweep path uses, so fabric and local caches
        interoperate byte-for-byte."""
        from ..scenarios.run import scenario_cache_key
        return scenario_cache_key(scenario)

    def record_scenario(self, scenario: _t.Any) -> str:
        """Teach the fabric the key ↔ scenario binding (so the result
        service can serve ``/result/<key>`` losslessly); returns the
        key."""
        key = self.key_for(scenario)
        self.queue.record_scenario(key, scenario.to_json())
        return key

    def enqueue_scenario(self, scenario: _t.Any) -> str:
        """Queue one cold scenario for the workers; returns its key.
        Warm keys should be served from :attr:`store` instead —
        ``repro.sweep(..., fabric=...)`` does both."""
        key = self.key_for(scenario)
        self.queue.enqueue(key, scenario.to_json())
        return key

    # ---------------------------------------------------------- results
    def load_result(self, key: str) -> _t.Optional[_t.Any]:
        """The stored :class:`~repro.scenarios.run.ModeRun` for ``key``,
        or ``None`` on a miss.  Corrupt bytes quarantine (file:
        ``*.corrupt``; sqlite: the ``corrupt`` table), warn, and report
        a miss — exactly the sweep driver's contract, so a poisoned
        entry recomputes instead of crashing the fabric."""
        try:
            data = self.store.get(key)
        except Exception as exc:  # noqa: BLE001 — a broken store read
            # must degrade to a miss, never take down a sweep/service
            warnings.warn(
                f"fabric store read failed for {key[:12]}… "
                f"({type(exc).__name__}: {exc}); treating as a miss",
                RuntimeWarning, stacklevel=2)
            return None
        if data is None:
            return None
        try:
            return pickle.loads(data)
        except Exception as exc:  # noqa: BLE001 — corrupt pickles raise
            # nearly anything; quarantine + miss, same as the sweep
            where = self.store.quarantine(
                key, f"{type(exc).__name__}: {exc}")
            note = f"; entry quarantined to {where}" if where else ""
            warnings.warn(
                f"ignoring corrupt fabric store entry {key[:12]}… "
                f"({type(exc).__name__}: {exc}){note}; the point will "
                f"recompute", RuntimeWarning, stacklevel=2)
            return None

    def put_result(self, key: str, mode_run: _t.Any) -> None:
        """Store one computed result — the exact bytes the serial sweep
        cache would write (pickle, highest protocol), so fabric-filled
        and locally-filled caches are byte-interchangeable."""
        self.store.put(key, pickle.dumps(
            mode_run, protocol=pickle.HIGHEST_PROTOCOL))

    # ---------------------------------------------------------- workers
    def drain(self, max_points: _t.Optional[int] = None) -> int:
        """Run the worker loop inline until the queue is empty (or
        ``max_points`` is hit); returns the number of points processed.
        The single-host convenience: tests and small sweeps need no
        daemon."""
        from .worker import drain
        return drain(self, max_points=max_points)

    def stats(self) -> _t.Dict[str, _t.Any]:
        """One combined snapshot: store + queue counters."""
        return {"store": self.store.stats().as_dict(),
                "queue": self.queue.stats().as_dict()}

    def close(self) -> None:
        self.store.close()
        self.queue.close()

    def __enter__(self) -> "Fabric":
        return self

    def __exit__(self, *exc: _t.Any) -> None:
        self.close()
