"""Pluggable result stores: the cache layer of the sweep fabric.

A :class:`ResultStore` holds the sweep cache's *bytes* — the pickled
:class:`~repro.scenarios.run.ModeRun` payloads of
:mod:`repro.perf.sweep` — content-addressed by the scenario-hash cache
keys of :func:`repro.scenarios.scenario_cache_key`.  Two backends ship:

``file`` (the default)
    :class:`FileStore` — the sharded-file layout every release since
    PR 1 has written (``<root>/<key[:2]>/<key>.pkl``, atomic
    tmp+replace writers, ``.corrupt`` quarantine files).  It is the
    compatibility *oracle*: keys, paths and stored bytes are pinned by
    ``tests/api/test_cache_compat.py``, and the SQLite backend is
    proven byte-identical against it.

``sqlite``
    :class:`SqliteStore` — one SQLite file (``results.sqlite3`` under
    the cache root) holding an indexed ``results`` table with the
    payload blobs inline, in WAL journal mode so concurrent writers
    (pool workers, fabric worker daemons, the result service's handler
    threads) never block readers.  Stored payload bytes are exactly the
    bytes the file store would write; quarantined entries move to a
    ``corrupt`` table instead of ``*.corrupt`` files.

Selection mirrors the engine-backend seam of
:mod:`repro.simulate.backends`: process-wide via
:func:`set_cache_backend`, from the environment via
``REPRO_CACHE_BACKEND`` (parsed defensively at import — garbage warns
and falls back to ``file``), or explicitly via
:func:`open_store`\\ 's ``backend=`` argument.  The backend never
enters cache keys: a result written under one backend and migrated to
the other (``python -m repro.experiments cache migrate``) serves
byte-identically.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pathlib
import pickle
import sqlite3
import threading
import time
import typing as _t

from .._envflags import env_choice as _env_choice

__all__ = ["CACHE_BACKENDS", "CACHE_BACKEND_DEFAULT", "FileStore",
           "ResultStore", "SqliteStore", "StoreStats", "get_cache_backend",
           "open_store", "resolve_cache_backend", "set_cache_backend",
           "SQLITE_FILENAME"]

#: the recognized cache-store backend names, in documentation order
CACHE_BACKENDS: _t.Tuple[str, ...] = ("file", "sqlite")

#: the SQLite backend's database file, under the cache root
SQLITE_FILENAME = "results.sqlite3"

_ENV_VAR = "REPRO_CACHE_BACKEND"


def _env_backend(name: str = _ENV_VAR) -> str:
    """Parse the cache-backend env var defensively.

    A garbage value must not make ``import repro.fabric`` (or the sweep
    driver that lazily opens stores) raise or silently flip layouts:
    :func:`repro._envflags.env_choice` warns and falls back to the
    ``file`` oracle layout, matching the ``REPRO_ENGINE`` contract.
    """
    return _env_choice(name, CACHE_BACKENDS, "file")


#: process-wide default for ``open_store(..., backend=None)``
CACHE_BACKEND_DEFAULT: str = _env_backend()


def get_cache_backend() -> str:
    """The process-wide default cache-store backend name."""
    return CACHE_BACKEND_DEFAULT


def set_cache_backend(name: str) -> str:
    """Set the process-wide default cache backend; returns the previous
    default (so callers can restore it), mirroring
    :func:`repro.simulate.set_engine_backend`.

    The ``file`` backend remains the compatibility oracle — switching
    to ``sqlite`` changes where bytes live, never what they are, and
    switching back restores the pinned sharded-file layout.  Unknown
    names raise ``ValueError``; only the *environment* path is
    forgiving.
    """
    global CACHE_BACKEND_DEFAULT
    resolve_cache_backend(name)
    previous = CACHE_BACKEND_DEFAULT
    CACHE_BACKEND_DEFAULT = name
    return previous


def resolve_cache_backend(name: _t.Optional[str]) -> str:
    """Validate an explicit backend name; ``None`` means "use the
    process-wide default"."""
    if name is None:
        return CACHE_BACKEND_DEFAULT
    if name not in CACHE_BACKENDS:
        raise ValueError(
            f"unknown cache backend {name!r}; choose from "
            f"{', '.join(CACHE_BACKENDS)}")
    return name


@dataclasses.dataclass(frozen=True)
class StoreStats:
    """Operator-facing snapshot of one store (``cache stats`` CLI,
    the result service's ``/stats`` endpoint)."""

    backend: str
    location: str
    entries: int
    total_bytes: int
    corrupt: int

    def as_dict(self) -> _t.Dict[str, _t.Any]:
        return dataclasses.asdict(self)


class ResultStore:
    """The store protocol: content-addressed result bytes.

    Keys are the scenario-hash cache keys of
    :func:`repro.perf.point_cache_key`; values are the exact pickled
    payload bytes the sweep driver stores.  Implementations must be
    safe under concurrent writers of *equal* bytes for one key (the
    cache's writers are deterministic, so last-writer-wins is
    byte-neutral) and must keep :meth:`get` cheap — the result service
    serves straight out of it.
    """

    backend: str = "abstract"

    def get(self, key: str) -> _t.Optional[bytes]:
        """The stored bytes for ``key``, or ``None`` on a miss."""
        raise NotImplementedError

    def put(self, key: str, data: bytes) -> None:
        """Store ``data`` under ``key`` (replacing any previous
        entry — writers are deterministic, so replacement is
        byte-neutral)."""
        raise NotImplementedError

    def has(self, key: str) -> bool:
        return self.get(key) is not None

    def delete(self, key: str) -> bool:
        """Drop one entry; returns whether it existed."""
        raise NotImplementedError

    def iter_keys(self) -> _t.Iterator[str]:
        """All stored keys, in sorted order (deterministic listings)."""
        raise NotImplementedError

    def stats(self) -> StoreStats:
        raise NotImplementedError

    def quarantine(self, key: str, reason: str) -> _t.Optional[str]:
        """Move a corrupt entry aside (kept for post-mortems, ignored
        by :meth:`get`); returns a human-readable destination, or
        ``None`` when there was nothing to move (best-effort — never
        raises)."""
        raise NotImplementedError

    def clear(self) -> int:
        """Delete every stored result *and* the quarantine/temp residue;
        returns the number of results removed (residue not counted)."""
        raise NotImplementedError

    def prune(self) -> int:
        """Drop quarantine/temp residue only, keeping every healthy
        entry; returns the number of items removed."""
        raise NotImplementedError

    def verify(self) -> _t.List[_t.Tuple[str, str]]:
        """Integrity pass over every entry; returns ``(key, problem)``
        pairs (empty when the store is healthy).  The SQLite backend
        re-hashes stored bytes against the digest recorded at ``put``
        time; the file layout records no digest, so its entries are
        probed by unpickling instead."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any underlying handles (idempotent)."""

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc: _t.Any) -> None:
        self.close()


# ---------------------------------------------------------- file store
class FileStore(ResultStore):
    """The pinned sharded-file layout: ``<root>/<key[:2]>/<key>.pkl``.

    Byte-for-byte the store :mod:`repro.perf.sweep` has always written:
    atomic ``.tmp<pid>`` + ``os.replace`` writers, ``.corrupt``
    quarantine files, shard directories pruned on :meth:`clear`.
    ``tests/api/test_cache_compat.py`` pins keys, paths and bytes.
    """

    backend = "file"

    def __init__(self, root: _t.Union[str, pathlib.Path]) -> None:
        self.root = pathlib.Path(root)

    def path(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, key: str) -> _t.Optional[bytes]:
        try:
            return self.path(key).read_bytes()
        except FileNotFoundError:
            return None

    def put(self, key: str, data: bytes) -> None:
        path = self.path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp{os.getpid()}")
        tmp.write_bytes(data)
        os.replace(tmp, path)  # atomic under concurrent writers

    def has(self, key: str) -> bool:
        return self.path(key).is_file()

    def delete(self, key: str) -> bool:
        try:
            self.path(key).unlink()
            return True
        except OSError:
            return False

    def iter_keys(self) -> _t.Iterator[str]:
        if not self.root.is_dir():
            return iter(())
        return iter(sorted(p.stem for p in self.root.rglob("*.pkl")))

    def stats(self) -> StoreStats:
        entries = total = corrupt = 0
        if self.root.is_dir():
            for p in self.root.rglob("*.pkl"):
                entries += 1
                try:
                    total += p.stat().st_size
                except OSError:
                    pass
            corrupt = sum(1 for _ in self.root.rglob("*.corrupt"))
        return StoreStats(self.backend, str(self.root), entries, total,
                          corrupt)

    def quarantine(self, key: str, reason: str) -> _t.Optional[str]:
        path = self.path(key)
        quarantined = path.with_suffix(".corrupt")
        try:
            os.replace(path, quarantined)
        except OSError:
            return None
        return quarantined.name

    def clear(self) -> int:
        removed = 0
        if self.root.is_dir():
            for p in self.root.rglob("*.pkl"):
                try:
                    p.unlink()
                    removed += 1
                except OSError:
                    pass
            # also the .tmp<pid> droppings of writers that crashed
            # between open and os.replace, and quarantined entries
            for pattern in ("*.tmp*", "*.corrupt"):
                for p in self.root.rglob(pattern):
                    if p.is_file():
                        try:
                            p.unlink()
                        except OSError:
                            pass
            # deepest-first so nested shard dirs empty out bottom-up;
            # rmdir refuses non-empty dirs, which is what we want
            for d in sorted((d for d in self.root.rglob("*")
                             if d.is_dir()), reverse=True):
                try:
                    d.rmdir()
                except OSError:
                    pass
        return removed

    def prune(self) -> int:
        removed = 0
        if self.root.is_dir():
            for pattern in ("*.tmp*", "*.corrupt"):
                for p in self.root.rglob(pattern):
                    if p.is_file():
                        try:
                            p.unlink()
                            removed += 1
                        except OSError:
                            pass
            for d in sorted((d for d in self.root.rglob("*")
                             if d.is_dir()), reverse=True):
                try:
                    d.rmdir()
                except OSError:
                    pass
        return removed

    def verify(self) -> _t.List[_t.Tuple[str, str]]:
        problems: _t.List[_t.Tuple[str, str]] = []
        for key in self.iter_keys():
            data = self.get(key)
            if data is None:
                continue
            try:
                pickle.loads(data)
            except Exception as exc:  # noqa: BLE001 — corrupt pickles
                # raise nearly anything; verify reports, never raises
                problems.append(
                    (key, f"unreadable: {type(exc).__name__}: {exc}"))
        return problems


# -------------------------------------------------------- sqlite store
_SCHEMA = """
CREATE TABLE IF NOT EXISTS results (
    key        TEXT PRIMARY KEY,
    payload    BLOB NOT NULL,
    sha256     TEXT NOT NULL,
    size       INTEGER NOT NULL,
    stored_at  REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS corrupt (
    key            TEXT,
    payload        BLOB,
    sha256         TEXT,
    reason         TEXT,
    quarantined_at REAL
);
"""


class SqliteStore(ResultStore):
    """One SQLite file: an indexed ``results`` table with the payload
    blobs inline, WAL journal mode for concurrent writers.

    The stored ``payload`` bytes are exactly what :class:`FileStore`
    would write for the same key, so migrating between backends is a
    verbatim byte copy and cache keys never change.  A ``sha256``
    digest of the payload is recorded at :meth:`put` time; ``cache
    verify`` re-hashes stored bytes against it.  Corrupt entries move
    to the ``corrupt`` table (the SQLite analogue of the file layout's
    ``*.corrupt`` quarantine files).
    """

    backend = "sqlite"

    def __init__(self, root: _t.Union[str, pathlib.Path]) -> None:
        root = pathlib.Path(root)
        if root.suffix in (".sqlite3", ".sqlite", ".db"):
            self.db_path = root
            self.root = root.parent
        else:
            self.root = root
            self.db_path = root / SQLITE_FILENAME
        self._local = threading.local()

    # each thread gets its own connection (sqlite3 connections are not
    # thread-safe; the result service runs one handler per thread)
    def _conn(self, create: bool = True) -> _t.Optional[sqlite3.Connection]:
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            return conn
        if not create and not self.db_path.is_file():
            return None
        self.db_path.parent.mkdir(parents=True, exist_ok=True)
        conn = sqlite3.connect(self.db_path, timeout=30.0)
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
        conn.executescript(_SCHEMA)
        conn.commit()
        self._local.conn = conn
        return conn

    def get(self, key: str) -> _t.Optional[bytes]:
        conn = self._conn(create=False)
        if conn is None:
            return None
        row = conn.execute(
            "SELECT payload FROM results WHERE key = ?", (key,)).fetchone()
        return None if row is None else bytes(row[0])

    def put(self, key: str, data: bytes) -> None:
        conn = self._conn()
        assert conn is not None
        with conn:
            conn.execute(
                "INSERT OR REPLACE INTO results "
                "(key, payload, sha256, size, stored_at) "
                "VALUES (?, ?, ?, ?, ?)",
                (key, data, hashlib.sha256(data).hexdigest(), len(data),
                 time.time()))

    def has(self, key: str) -> bool:
        conn = self._conn(create=False)
        if conn is None:
            return False
        return conn.execute("SELECT 1 FROM results WHERE key = ?",
                            (key,)).fetchone() is not None

    def delete(self, key: str) -> bool:
        conn = self._conn(create=False)
        if conn is None:
            return False
        with conn:
            cur = conn.execute("DELETE FROM results WHERE key = ?",
                               (key,))
        return cur.rowcount > 0

    def iter_keys(self) -> _t.Iterator[str]:
        conn = self._conn(create=False)
        if conn is None:
            return iter(())
        rows = conn.execute(
            "SELECT key FROM results ORDER BY key").fetchall()
        return iter(r[0] for r in rows)

    def stats(self) -> StoreStats:
        conn = self._conn(create=False)
        if conn is None:
            return StoreStats(self.backend, str(self.db_path), 0, 0, 0)
        entries, total = conn.execute(
            "SELECT COUNT(*), COALESCE(SUM(size), 0) FROM results"
        ).fetchone()
        corrupt, = conn.execute("SELECT COUNT(*) FROM corrupt").fetchone()
        return StoreStats(self.backend, str(self.db_path), entries,
                          total, corrupt)

    def quarantine(self, key: str, reason: str) -> _t.Optional[str]:
        conn = self._conn(create=False)
        if conn is None:
            return None
        try:
            with conn:
                row = conn.execute(
                    "SELECT payload, sha256 FROM results WHERE key = ?",
                    (key,)).fetchone()
                if row is None:
                    return None
                conn.execute(
                    "INSERT INTO corrupt "
                    "(key, payload, sha256, reason, quarantined_at) "
                    "VALUES (?, ?, ?, ?, ?)",
                    (key, row[0], row[1], reason, time.time()))
                conn.execute("DELETE FROM results WHERE key = ?", (key,))
        except sqlite3.Error:
            return None
        return f"corrupt table row for {key[:12]}…"

    def corrupt_rows(self) -> _t.List[_t.Tuple[str, str]]:
        """(key, reason) of every quarantined row, oldest first — the
        post-mortem listing (``cache stats`` shows the count)."""
        conn = self._conn(create=False)
        if conn is None:
            return []
        return [(k, r) for k, r in conn.execute(
            "SELECT key, reason FROM corrupt ORDER BY quarantined_at")]

    def clear(self) -> int:
        conn = self._conn(create=False)
        if conn is None:
            return 0
        with conn:
            removed = conn.execute(
                "SELECT COUNT(*) FROM results").fetchone()[0]
            conn.execute("DELETE FROM results")
            conn.execute("DELETE FROM corrupt")
        return removed

    def prune(self) -> int:
        conn = self._conn(create=False)
        if conn is None:
            return 0
        with conn:
            removed = conn.execute(
                "SELECT COUNT(*) FROM corrupt").fetchone()[0]
            conn.execute("DELETE FROM corrupt")
        return removed

    def verify(self) -> _t.List[_t.Tuple[str, str]]:
        conn = self._conn(create=False)
        if conn is None:
            return []
        problems: _t.List[_t.Tuple[str, str]] = []
        for key, payload, digest in conn.execute(
                "SELECT key, payload, sha256 FROM results ORDER BY key"):
            actual = hashlib.sha256(bytes(payload)).hexdigest()
            if actual != digest:
                problems.append(
                    (key, f"digest mismatch: stored {digest[:12]}…, "
                          f"bytes hash to {actual[:12]}…"))
        return problems

    def close(self) -> None:
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            conn.close()
            self._local.conn = None


_STORE_TYPES: _t.Dict[str, _t.Type[ResultStore]] = {
    "file": FileStore, "sqlite": SqliteStore,
}


def open_store(root: _t.Union[str, pathlib.Path],
               backend: _t.Optional[str] = None) -> ResultStore:
    """Open the result store at ``root`` for the selected backend
    (``None`` → the process-wide default: ``REPRO_CACHE_BACKEND`` /
    :func:`set_cache_backend`, ``file`` out of the box).

    Both backends share one cache root: the file layout's shard
    directories and the SQLite backend's ``results.sqlite3`` coexist
    there, which is what lets ``cache migrate`` convert in place.
    """
    return _STORE_TYPES[resolve_cache_backend(backend)](root)
