"""The ``cache`` admin CLI: inspect and maintain result stores.

Reached as ``python -m repro.experiments cache <verb>`` (the
experiments front-door forwards here) or directly as ``python -m
repro.fabric.admin``:

``cache stats``
    Entry/byte/quarantine counts for the store.
``cache prune``
    Drop quarantine and temp residue (``*.corrupt`` / ``*.tmp*``
    files, ``corrupt`` table rows), keeping every healthy entry.
``cache verify``
    Integrity pass: the SQLite backend re-hashes every stored payload
    against the sha256 recorded at put time; the file layout records
    no digest, so its entries are probed by unpickling.  Exit status 1
    when problems are found.
``cache migrate --to sqlite|file``
    Verbatim byte copy of every entry into the other backend at the
    same cache root — keys and bytes never change, so a migrated store
    serves identically (the differential tests pin this).

All verbs honour ``--cache-dir`` (default: the configured sweep cache
directory) and ``--backend`` (default: the ``REPRO_CACHE_BACKEND``
selection), plus ``--json`` for machine-readable output.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import typing as _t

from .store import (CACHE_BACKENDS, ResultStore, open_store,
                    resolve_cache_backend)

__all__ = ["main"]


def _default_cache_dir() -> pathlib.Path:
    from ..perf.sweep import get_config
    return get_config().cache_dir


def _open(args: argparse.Namespace) -> ResultStore:
    root = pathlib.Path(args.cache_dir) if args.cache_dir else \
        _default_cache_dir()
    return open_store(root, args.backend)


def _emit(args: argparse.Namespace, payload: _t.Dict[str, _t.Any],
          lines: _t.Sequence[str]) -> None:
    if args.json:
        print(json.dumps(payload, sort_keys=True))
    else:
        for line in lines:
            print(line)


def _cmd_stats(args: argparse.Namespace) -> int:
    with _open(args) as store:
        stats = store.stats()
    _emit(args, stats.as_dict(), [
        f"backend:     {stats.backend}",
        f"location:    {stats.location}",
        f"entries:     {stats.entries}",
        f"total bytes: {stats.total_bytes}",
        f"quarantined: {stats.corrupt}",
    ])
    return 0


def _cmd_prune(args: argparse.Namespace) -> int:
    with _open(args) as store:
        removed = store.prune()
    _emit(args, {"pruned": removed},
          [f"pruned {removed} quarantined/temp item(s)"])
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    with _open(args) as store:
        stats = store.stats()
        problems = store.verify()
    payload = {"entries": stats.entries,
               "problems": [{"key": k, "problem": p}
                            for k, p in problems]}
    lines = [f"verified {stats.entries} entrie(s): "
             f"{len(problems)} problem(s)"]
    lines += [f"  {k[:16]}… {p}" for k, p in problems]
    _emit(args, payload, lines)
    return 1 if problems else 0


def _cmd_migrate(args: argparse.Namespace) -> int:
    target = args.to
    source = "file" if target == "sqlite" else "sqlite"
    root = pathlib.Path(args.cache_dir) if args.cache_dir else \
        _default_cache_dir()
    copied = skipped = 0
    with open_store(root, source) as src, \
            open_store(root, target) as dst:
        for key in src.iter_keys():
            data = src.get(key)
            if data is None:
                continue
            if not args.force and dst.get(key) == data:
                skipped += 1  # already there, byte-identical
                continue
            dst.put(key, data)
            copied += 1
    _emit(args, {"from": source, "to": target, "copied": copied,
                 "skipped": skipped},
          [f"migrated {copied} entrie(s) {source} → {target} "
           f"({skipped} already present byte-identically)"])
    return 0


def main(argv: _t.Optional[_t.Sequence[str]] = None,
         prog: str = "python -m repro.fabric.admin") -> int:
    parser = argparse.ArgumentParser(
        prog=prog,
        description="Inspect and maintain the sweep result cache.")
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="cache root (default: the configured "
                             "sweep cache directory)")
    common.add_argument("--backend", choices=CACHE_BACKENDS,
                        default=None,
                        help="store backend (default: the "
                             "REPRO_CACHE_BACKEND selection)")
    common.add_argument("--json", action="store_true",
                        help="machine-readable output")
    sub = parser.add_subparsers(dest="verb", required=True)
    sub.add_parser("stats", parents=[common],
                   help="entry/byte/quarantine counts"
                   ).set_defaults(fn=_cmd_stats)
    sub.add_parser("prune", parents=[common],
                   help="drop quarantine and temp residue"
                   ).set_defaults(fn=_cmd_prune)
    sub.add_parser("verify", parents=[common],
                   help="re-hash / probe every stored entry"
                   ).set_defaults(fn=_cmd_verify)
    mig = sub.add_parser("migrate", parents=[common],
                         help="copy every entry into the other "
                              "backend, bytes verbatim")
    mig.add_argument("--to", required=True, choices=CACHE_BACKENDS,
                     help="destination backend")
    mig.add_argument("--force", action="store_true",
                     help="rewrite entries the destination already "
                          "holds byte-identically")
    mig.set_defaults(fn=_cmd_migrate)
    args = parser.parse_args(argv)
    if args.backend is not None:
        resolve_cache_backend(args.backend)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
