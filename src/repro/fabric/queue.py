"""Durable on-disk work queue of scenario hashes.

One SQLite file (``queue.sqlite3`` under the fabric root, WAL journal
mode) holds two tables:

``queue``
    The work items: one row per cold scenario-hash key, FIFO by
    insertion, with *lease/ack/retry* semantics.  A worker
    :meth:`~WorkQueue.lease`\\ s the oldest ready item (marking it
    leased until a deadline), runs it, and :meth:`~WorkQueue.ack`\\ s;
    a worker that dies mid-lease simply stops renewing — the next
    lease call expires the stale row, charges the item one
    ``worker-lost`` attempt (the accounting of
    :class:`repro.perf.PointFailure`) and re-readies it with the sweep
    driver's exponential backoff (``backoff * 2**k``, capped at 30 s).
    An item that exhausts ``max_attempts`` parks as ``failed`` with its
    last error; re-enqueueing it starts a fresh attempt budget (the
    sweep-layer contract: failures are never cached, the point
    recomputes on the next sweep).

``scenarios``
    The key ↔ scenario-JSON bindings the fabric has learned — what
    lets the result service answer ``GET /result/<cache_key>`` with a
    full lossless :class:`~repro.results.RunResult` (the store alone
    holds payload bytes; the scenario rides here).

Every mutation is one SQLite transaction, so any number of workers,
sweeps and service threads can share a queue file; per-thread
connections keep the threaded result service safe.
"""

from __future__ import annotations

import dataclasses
import pathlib
import sqlite3
import threading
import time
import typing as _t

__all__ = ["Lease", "QueueStats", "WorkQueue", "QUEUE_FILENAME",
           "STATES"]

#: the queue database file, under the fabric root
QUEUE_FILENAME = "queue.sqlite3"

#: item lifecycle states
STATES: _t.Tuple[str, ...] = ("ready", "leased", "done", "failed")

#: upper bound on one retry-backoff delay, seconds (mirrors
#: ``repro.perf.sweep._MAX_BACKOFF``)
_MAX_BACKOFF = 30.0

_SCHEMA = """
CREATE TABLE IF NOT EXISTS queue (
    key         TEXT PRIMARY KEY,
    state       TEXT NOT NULL,
    attempts    INTEGER NOT NULL DEFAULT 0,
    worker_lost INTEGER NOT NULL DEFAULT 0,
    enqueued_at REAL NOT NULL,
    ready_at    REAL NOT NULL,
    lease_until REAL,
    worker      TEXT,
    error       TEXT
);
CREATE TABLE IF NOT EXISTS scenarios (
    key           TEXT PRIMARY KEY,
    scenario_json TEXT NOT NULL
);
"""


@dataclasses.dataclass(frozen=True)
class Lease:
    """One leased work item: run the scenario, ``put`` the result
    bytes, then ``ack`` the key before ``deadline``."""

    key: str
    scenario_json: str
    attempts: int          #: attempts charged so far (this run not yet)
    deadline: float        #: wall-clock lease expiry


@dataclasses.dataclass(frozen=True)
class QueueStats:
    """Depth counters for ``cache``-CLI / ``/stats`` reporting."""

    ready: int = 0
    leased: int = 0
    done: int = 0
    failed: int = 0

    @property
    def depth(self) -> int:
        """Items still owed a result (ready + leased)."""
        return self.ready + self.leased

    def as_dict(self) -> _t.Dict[str, int]:
        return dict(dataclasses.asdict(self), depth=self.depth)


@dataclasses.dataclass(frozen=True)
class QueueItem:
    """One queue row, as reported by :meth:`WorkQueue.get`."""

    key: str
    state: str
    attempts: int
    worker_lost: int
    error: _t.Optional[str]


class WorkQueue:
    """The durable scenario-hash work queue (see the module docstring
    for the protocol)."""

    def __init__(self, path: _t.Union[str, pathlib.Path], *,
                 max_attempts: int = 3, backoff: float = 0.5) -> None:
        path = pathlib.Path(path)
        if path.suffix not in (".sqlite3", ".sqlite", ".db"):
            path = path / QUEUE_FILENAME
        self.path = path
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if backoff < 0:
            raise ValueError("backoff must be non-negative")
        self.max_attempts = max_attempts
        self.backoff = backoff
        self._local = threading.local()

    def _conn(self) -> sqlite3.Connection:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            conn = sqlite3.connect(self.path, timeout=30.0)
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.executescript(_SCHEMA)
            conn.commit()
            self._local.conn = conn
        return conn

    def _backoff_delay(self, attempts: int) -> float:
        # attempt k's retry waits backoff * 2**(k-1), capped — the
        # sweep driver's exact retry curve
        return min(self.backoff * (2 ** max(attempts - 1, 0)),
                   _MAX_BACKOFF)

    # ------------------------------------------------------------ write
    def record_scenario(self, key: str, scenario_json: str) -> None:
        """Bind ``key`` ↔ scenario JSON (idempotent) without queueing
        work — how warm hits become servable by ``/result/<key>``."""
        conn = self._conn()
        with conn:
            conn.execute(
                "INSERT OR IGNORE INTO scenarios (key, scenario_json) "
                "VALUES (?, ?)", (key, scenario_json))

    def enqueue(self, key: str, scenario_json: str,
                now: _t.Optional[float] = None) -> bool:
        """Queue one cold point; returns whether new work was created.

        Idempotent while the item is in flight (``ready``/``leased``
        rows are left untouched); a ``done`` or ``failed`` row is
        re-readied with a fresh attempt budget — the caller observed
        the store cold, so the previous outcome is stale.
        """
        now = time.time() if now is None else now
        conn = self._conn()
        with conn:
            conn.execute(
                "INSERT OR IGNORE INTO scenarios (key, scenario_json) "
                "VALUES (?, ?)", (key, scenario_json))
            cur = conn.execute(
                "INSERT OR IGNORE INTO queue "
                "(key, state, enqueued_at, ready_at) "
                "VALUES (?, 'ready', ?, ?)", (key, now, now))
            if cur.rowcount > 0:
                return True
            cur = conn.execute(
                "UPDATE queue SET state = 'ready', attempts = 0, "
                "worker_lost = 0, ready_at = ?, lease_until = NULL, "
                "worker = NULL, error = NULL "
                "WHERE key = ? AND state IN ('done', 'failed')",
                (now, key))
            return cur.rowcount > 0

    def _expire_stale_leases(self, conn: sqlite3.Connection,
                             now: float) -> None:
        """Charge every expired lease one ``worker-lost`` attempt and
        re-ready (with backoff) or fail the item — the queue-side twin
        of the sweep driver's dead-pool-worker accounting."""
        stale = conn.execute(
            "SELECT key, attempts, worker FROM queue "
            "WHERE state = 'leased' AND lease_until < ?",
            (now,)).fetchall()
        for key, attempts, worker in stale:
            attempts += 1
            error = (f"worker-lost: lease by {worker or '?'} expired "
                     f"(attempt {attempts})")
            if attempts >= self.max_attempts:
                conn.execute(
                    "UPDATE queue SET state = 'failed', attempts = ?, "
                    "worker_lost = worker_lost + 1, lease_until = NULL, "
                    "worker = NULL, error = ? WHERE key = ?",
                    (attempts, error, key))
            else:
                conn.execute(
                    "UPDATE queue SET state = 'ready', attempts = ?, "
                    "worker_lost = worker_lost + 1, lease_until = NULL, "
                    "worker = NULL, error = ?, ready_at = ? "
                    "WHERE key = ?",
                    (attempts, error, now + self._backoff_delay(attempts),
                     key))

    def lease(self, worker: str, lease_s: float = 60.0,
              now: _t.Optional[float] = None) -> _t.Optional[Lease]:
        """Claim the oldest ready item (expiring stale leases first);
        ``None`` when nothing is ready right now."""
        if lease_s <= 0:
            raise ValueError("lease_s must be positive")
        now = time.time() if now is None else now
        conn = self._conn()
        with conn:
            self._expire_stale_leases(conn, now)
            row = conn.execute(
                "SELECT q.key, s.scenario_json, q.attempts "
                "FROM queue q JOIN scenarios s ON s.key = q.key "
                "WHERE q.state = 'ready' AND q.ready_at <= ? "
                "ORDER BY q.rowid LIMIT 1", (now,)).fetchone()
            if row is None:
                return None
            key, scenario_json, attempts = row
            deadline = now + lease_s
            conn.execute(
                "UPDATE queue SET state = 'leased', worker = ?, "
                "lease_until = ? WHERE key = ?",
                (worker, deadline, key))
        return Lease(key, scenario_json, attempts, deadline)

    def ack(self, key: str, worker: str) -> bool:
        """Mark a leased item done; returns whether the ack landed.

        Only the current leaseholder may ack: an orphaned worker whose
        lease already expired (and whose point was re-leased) gets
        ``False`` — its store ``put`` was byte-identical anyway, but
        the attempt accounting belongs to the live lease.
        """
        conn = self._conn()
        with conn:
            cur = conn.execute(
                "UPDATE queue SET state = 'done', "
                "attempts = attempts + 1, lease_until = NULL, "
                "error = NULL WHERE key = ? AND state = 'leased' "
                "AND worker = ?", (key, worker))
        return cur.rowcount > 0

    def fail(self, key: str, worker: str, error: str,
             now: _t.Optional[float] = None) -> bool:
        """Charge a leased item one failed attempt (the run raised);
        re-readies with backoff or parks it as ``failed`` once
        ``max_attempts`` is spent."""
        now = time.time() if now is None else now
        conn = self._conn()
        with conn:
            row = conn.execute(
                "SELECT attempts FROM queue WHERE key = ? "
                "AND state = 'leased' AND worker = ?",
                (key, worker)).fetchone()
            if row is None:
                return False
            attempts = row[0] + 1
            if attempts >= self.max_attempts:
                conn.execute(
                    "UPDATE queue SET state = 'failed', attempts = ?, "
                    "lease_until = NULL, worker = NULL, error = ? "
                    "WHERE key = ?", (attempts, error, key))
            else:
                conn.execute(
                    "UPDATE queue SET state = 'ready', attempts = ?, "
                    "lease_until = NULL, worker = NULL, error = ?, "
                    "ready_at = ? WHERE key = ?",
                    (attempts, error,
                     now + self._backoff_delay(attempts), key))
        return True

    # ------------------------------------------------------------- read
    def get(self, key: str) -> _t.Optional[QueueItem]:
        row = self._conn().execute(
            "SELECT key, state, attempts, worker_lost, error "
            "FROM queue WHERE key = ?", (key,)).fetchone()
        return None if row is None else QueueItem(*row)

    def scenario_for(self, key: str) -> _t.Optional[str]:
        """The recorded scenario JSON for ``key`` (``None`` when the
        fabric has never seen it)."""
        row = self._conn().execute(
            "SELECT scenario_json FROM scenarios WHERE key = ?",
            (key,)).fetchone()
        return None if row is None else row[0]

    def expire_stale(self, now: _t.Optional[float] = None) -> None:
        """Run the stale-lease sweep without claiming work — lets a
        workerless observer (a waiting sweep) see ``worker-lost``
        failures progress instead of hanging on a dead lease."""
        now = time.time() if now is None else now
        conn = self._conn()
        with conn:
            self._expire_stale_leases(conn, now)

    def stats(self) -> QueueStats:
        counts = dict(self._conn().execute(
            "SELECT state, COUNT(*) FROM queue GROUP BY state"))
        return QueueStats(**{s: counts.get(s, 0) for s in STATES})

    def clear(self) -> int:
        """Drop every queue row (the scenario bindings survive — they
        are provenance, not work); returns the number removed."""
        conn = self._conn()
        with conn:
            removed = conn.execute(
                "SELECT COUNT(*) FROM queue").fetchone()[0]
            conn.execute("DELETE FROM queue")
        return removed

    def close(self) -> None:
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            conn.close()
            self._local.conn = None

    def __enter__(self) -> "WorkQueue":
        return self

    def __exit__(self, *exc: _t.Any) -> None:
        self.close()
