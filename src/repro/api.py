"""The curated public facade: ``repro.run`` / ``repro.sweep`` /
``repro.iter_sweep`` / ``repro.compare`` / ``repro.scenario``.

One stable, versioned entry layer over the whole reproduction: every
workload — a paper figure point, an example, a CLI invocation, a future
dashboard — names a :class:`~repro.scenarios.Scenario` (directly or by
its registry name) and gets back a structured
:class:`~repro.results.RunResult` / :class:`~repro.results.ResultSet`
with cache provenance attached.  All functions here are re-exported
lazily at the top level (``import repro; repro.run(...)``); see
``docs/api.md`` for the tour and the stability policy.

Design invariants:

* The facade *wraps* the scenario execution layer
  (:mod:`repro.scenarios.run`) and the sweep driver
  (:mod:`repro.perf.sweep`); it never changes what is simulated, how
  results are cached (scenario-hash keys, :class:`ModeRun` bytes) or
  the determinism guarantees underneath.
* Sweeps stream: :func:`iter_sweep` yields results as the worker pool
  completes them; :func:`sweep` is the ordered batch form with an
  optional ``on_result`` progress callback.
* The engine backend (:func:`repro.simulate.set_engine_backend`, env
  ``REPRO_ENGINE``) is a pure execution detail: ``python`` and
  ``array`` produce bit-identical :class:`RunResult` payloads, so the
  choice never enters cache keys — cached bytes written under one
  backend are read back under the other, and pool workers inherit the
  parent's selection.
* Name resolution imports :mod:`repro.experiments` on demand so every
  registered figure/example scenario is addressable without eagerly
  importing the experiment harness at ``import repro`` time.
"""

from __future__ import annotations

import typing as _t

from .perf import PointFailure
from .perf import iter_sweep as _perf_iter_sweep
from .results import ResultSet, RunResult
from .scenarios import Scenario, scenario_cache_key
from .scenarios.run import SCENARIO_SWEEP_TAG, _run_scenario

__all__ = ["ResultSet", "RunResult", "Scenario", "compare",
           "iter_sweep", "run", "scenario", "sweep"]

#: the paper's three execution modes, in canonical comparison order
MODES: _t.Tuple[str, ...] = ("native", "sdr", "intra")

ScenarioLike = _t.Union[str, Scenario]


def _ensure_registry() -> None:
    """Make every registered scenario name resolvable: the figure
    modules register their grids at import, so importing the experiment
    harness (idempotent, lazy) populates the registry."""
    import repro.experiments  # noqa: F401  (import-time registration)


def scenario(name_or_scenario: ScenarioLike,
             **overrides: _t.Any) -> Scenario:
    """Resolve a scenario: a registry name (``"fig5b:p16:intra"``) or a
    :class:`Scenario` instance, with optional field overrides applied
    (``repro.scenario("fig5b:p16:intra", degree=3)``).

    The returned spec is frozen; chain
    :meth:`~repro.scenarios.Scenario.with_overrides` /
    :meth:`~repro.scenarios.Scenario.replace` /
    :meth:`~repro.scenarios.Scenario.with_failures` to derive variants.
    """
    if isinstance(name_or_scenario, Scenario):
        s = name_or_scenario
    elif isinstance(name_or_scenario, str):
        _ensure_registry()
        from .scenarios import get_scenario
        s = get_scenario(name_or_scenario)
    else:
        raise TypeError(f"expected a Scenario or a registered scenario "
                        f"name, got {type(name_or_scenario).__name__}")
    return s.with_overrides(overrides) if overrides else s


def run(name_or_scenario: ScenarioLike, *,
        cache: _t.Optional[bool] = None,
        cache_dir: _t.Optional[_t.Any] = None,
        before_run: _t.Optional[_t.Callable[..., None]] = None,
        retries: int = 0,
        backoff: float = 0.5,
        on_error: str = "raise",
        fabric: _t.Optional[_t.Any] = None,
        **overrides: _t.Any) -> RunResult:
    """Run one scenario end to end; returns a :class:`RunResult`.

    ``cache``/``cache_dir`` override the process-wide sweep-cache
    config (:func:`repro.perf.configure`); the result's ``cache_key`` /
    ``cache_hit`` report how the cache treated this run.

    ``retries``/``backoff``/``on_error`` are the robustness knobs of
    :func:`repro.perf.iter_sweep`; under ``on_error="return"`` a run
    that keeps failing comes back as a failed :class:`RunResult`
    (``result.ok`` False, the failure in ``result.error``) instead of
    raising.

    ``before_run(world, job)`` is the advanced instrumentation hook of
    the scenario runner (e.g. protocol-precise hook-triggered crashes);
    a hooked run is no longer a pure function of the scenario, so it
    always executes fresh and bypasses the cache entirely
    (``cache_key is None``).

    ``fabric`` serves/computes the run through a
    :class:`repro.fabric.Fabric` instead of this process — see
    :func:`sweep`.
    """
    s = scenario(name_or_scenario, **overrides)
    if before_run is not None:
        mode_run = _run_scenario(s, before_run=before_run)
        return RunResult.from_mode_run(mode_run, s)
    result, = iter_sweep([s], cache=cache, cache_dir=cache_dir,
                         retries=retries, backoff=backoff,
                         on_error=on_error, fabric=fabric)
    return result


def iter_sweep(scenarios: _t.Iterable[ScenarioLike], *,
               workers: _t.Optional[int] = None,
               cache: _t.Optional[bool] = None,
               cache_dir: _t.Optional[_t.Any] = None,
               timeout: _t.Optional[float] = None,
               retries: int = 0,
               backoff: float = 0.5,
               on_error: str = "raise",
               fabric: _t.Optional[_t.Any] = None
               ) -> _t.Iterator[RunResult]:
    """Streaming sweep: yield a :class:`RunResult` per scenario *as the
    pool completes them* (cache hits first, then fresh simulations in
    completion order — not input order; each result's ``scenario``
    identifies it).  Lazy: nothing runs until the first ``next()``.

    Layered on :func:`repro.perf.iter_sweep` with the shared scenario
    cache namespace, so streaming consumers, :func:`sweep` and the
    figure harness all dedupe onto the same scenario-hash keys and
    cached bytes.  ``timeout``/``retries``/``backoff``/``on_error``
    are the sweep driver's robustness knobs: with
    ``on_error="return"`` a scenario that exhausts its attempts yields
    a failed :class:`RunResult` (``.ok`` False) and the sweep keeps
    going.

    ``fabric`` (a :class:`repro.fabric.Fabric`) swaps the local worker
    pool for the distributed fabric: warm points stream straight out of
    the fabric's result store, cold points are enqueued for whatever
    ``python -m repro.fabric.worker`` daemons share the root, and the
    iterator polls results in as they land — see :func:`sweep`.
    """
    for _i, result in _iter_indexed([scenario(s) for s in scenarios],
                                    workers=workers, cache=cache,
                                    cache_dir=cache_dir, timeout=timeout,
                                    retries=retries, backoff=backoff,
                                    on_error=on_error, fabric=fabric):
        yield result


def _iter_indexed(resolved: _t.Sequence[Scenario], *,
                  workers: _t.Optional[int] = None,
                  cache: _t.Optional[bool] = None,
                  cache_dir: _t.Optional[_t.Any] = None,
                  timeout: _t.Optional[float] = None,
                  retries: int = 0,
                  backoff: float = 0.5,
                  on_error: str = "raise",
                  fabric: _t.Optional[_t.Any] = None
                  ) -> _t.Iterator[_t.Tuple[int, RunResult]]:
    """(input index, RunResult) pairs in completion order — the shared
    core of :func:`iter_sweep` and :func:`sweep`."""
    if fabric is not None:
        yield from _iter_fabric(resolved, fabric, timeout=timeout,
                                on_error=on_error)
        return
    for item in _perf_iter_sweep(resolved, _run_scenario,
                                 workers=workers, cache=cache,
                                 cache_dir=cache_dir,
                                 tag=SCENARIO_SWEEP_TAG,
                                 timeout=timeout, retries=retries,
                                 backoff=backoff, on_error=on_error):
        key = (item.cache_key if item.cache_key is not None
               else scenario_cache_key(item.point))
        if isinstance(item.value, PointFailure):
            yield item.index, RunResult.from_failure(
                item.value, item.point, cache_key=key)
            continue
        hit = item.cache_hit if item.cache_key is not None else None
        yield item.index, RunResult.from_mode_run(
            item.value, item.point, cache_key=key, cache_hit=hit)


def _iter_fabric(resolved: _t.Sequence[Scenario], fabric: _t.Any, *,
                 timeout: _t.Optional[float] = None,
                 on_error: str = "raise"
                 ) -> _t.Iterator[_t.Tuple[int, RunResult]]:
    """The fabric-backed sweep core: serve warm points from the
    fabric's store, enqueue cold ones for the workers sharing its root,
    poll the rest in.

    Semantics mirror the local driver where they can: points dedupe on
    the same scenario-hash keys, a point already warm *at sweep start*
    yields ``cache_hit=True``, one computed during this sweep (by a
    fabric worker) yields ``cache_hit=False``, so fabric and serial
    results are byte-identical.  Retry policy, though, lives in the
    *queue* (the fabric's ``max_attempts``/``backoff``, charged per
    worker attempt), not in per-sweep ``retries`` — a point the queue
    parks as ``failed`` surfaces as a
    :class:`~repro.perf.PointFailure` (``on_error="return"``) or
    raises (``"raise"``).  ``timeout`` is the overall wait budget for
    the sweep's cold points (no workers running means no progress)."""
    if on_error not in ("raise", "return"):
        raise ValueError(f"on_error must be 'raise' or 'return', got "
                         f"{on_error!r}")
    import time as _time

    pending: _t.List[_t.Tuple[int, str]] = []
    duplicates: _t.Dict[str, _t.List[int]] = {}
    seen: _t.Dict[str, int] = {}
    warm: _t.Dict[str, _t.Any] = {}
    for i, s in enumerate(resolved):
        key = fabric.record_scenario(s)
        if key in seen:
            duplicates.setdefault(key, []).append(i)
            continue
        seen[key] = i
        mode_run = fabric.load_result(key)
        if mode_run is not None:
            warm[key] = mode_run
            yield i, RunResult.from_mode_run(mode_run, s, cache_key=key,
                                             cache_hit=True)
        else:
            fabric.enqueue_scenario(s)
            pending.append((i, key))

    def _fan_out(key: str, make: _t.Callable[[int], RunResult]
                 ) -> _t.Iterator[_t.Tuple[int, RunResult]]:
        for j in duplicates.get(key, ()):  # same key, same result
            yield j, make(j)

    # duplicates of warm points fan out after the uniques, like the
    # local driver's in-sweep dedupe
    for key, mode_run in warm.items():
        yield from _fan_out(key, lambda j: RunResult.from_mode_run(
            mode_run, resolved[j], cache_key=key, cache_hit=True))

    deadline = (None if timeout is None else
                _time.monotonic() + timeout)  # detlint: ignore[DET003] -- wait budget for remote workers, not simulated time
    while pending:
        still: _t.List[_t.Tuple[int, str]] = []
        for i, key in pending:
            mode_run = fabric.load_result(key)
            if mode_run is not None:
                # computed during this sweep → a cold-run result,
                # exactly like the serial driver's fresh computation;
                # its same-key duplicates dedupe as hits, also like
                # the local driver
                yield i, RunResult.from_mode_run(
                    mode_run, resolved[i], cache_key=key,
                    cache_hit=False)
                yield from _fan_out(key, lambda j: RunResult.from_mode_run(
                    mode_run, resolved[j], cache_key=key,
                    cache_hit=True))
                continue
            item = fabric.queue.get(key)
            if item is not None and item.state == "failed":
                failure = PointFailure(
                    error=item.error or "point failed in fabric",
                    kind="worker-lost" if "worker-lost" in
                         (item.error or "") else "error",
                    attempts=item.attempts)
                if on_error == "raise":
                    raise RuntimeError(
                        f"fabric point {key[:12]}… failed after "
                        f"{item.attempts} attempt(s): {failure.error}")
                yield i, RunResult.from_failure(failure, resolved[i],
                                                cache_key=key)
                yield from _fan_out(key, lambda j: RunResult.from_failure(
                    failure, resolved[j], cache_key=key))
                continue
            still.append((i, key))
        pending = still
        if not pending:
            break
        if deadline is not None and _time.monotonic() >= deadline:  # detlint: ignore[DET003] -- wait budget for remote workers, not simulated time
            failure = PointFailure(
                error=f"fabric sweep timed out with {len(pending)} "
                      f"point(s) still pending (are workers running?)",
                kind="timeout", attempts=0)
            if on_error == "raise":
                raise TimeoutError(failure.error)
            for i, key in pending:
                yield i, RunResult.from_failure(failure, resolved[i],
                                                cache_key=key)
                yield from _fan_out(key, lambda j: RunResult.from_failure(
                    failure, resolved[j], cache_key=key))
            return
        _time.sleep(fabric.poll)


def sweep(scenarios: _t.Iterable[ScenarioLike], *,
          workers: _t.Optional[int] = None,
          cache: _t.Optional[bool] = None,
          cache_dir: _t.Optional[_t.Any] = None,
          timeout: _t.Optional[float] = None,
          retries: int = 0,
          backoff: float = 0.5,
          on_error: str = "raise",
          on_result: _t.Optional[_t.Callable[[RunResult], None]] = None,
          fabric: _t.Optional[_t.Any] = None
          ) -> ResultSet:
    """Evaluate a batch of scenarios; returns a :class:`ResultSet` in
    input order.

    ``workers`` fans the points out over a process pool; results are
    memoized on scenario hashes per the perf config.  ``on_result`` is
    invoked once per result *as it completes* (completion order — the
    streaming progress hook), while the returned set is always ordered
    like the input.  The robustness knobs
    (``timeout``/``retries``/``backoff``/``on_error``) pass through to
    :func:`repro.perf.iter_sweep`; under ``on_error="return"`` failed
    points appear in the set as failed :class:`RunResult`\\ s
    (``.ok`` False) rather than aborting the sweep.

    ``fabric`` (a :class:`repro.fabric.Fabric`) runs the sweep through
    the distributed fabric instead of a local pool: warm points serve
    immediately from the fabric's store, cold ones are enqueued for the
    worker daemons sharing its root, and a re-run of an interrupted
    sweep resumes from whatever they completed.  Results are
    byte-identical to the local path (same keys, same stored bytes);
    retry policy moves to the fabric's queue
    (``Fabric(max_attempts=..., backoff=...)``), so the per-sweep
    ``retries``/``backoff``/``workers``/``cache`` knobs are ignored in
    fabric mode and ``timeout`` bounds the total wait for cold points.
    """
    resolved = [scenario(s) for s in scenarios]
    ordered: _t.List[_t.Optional[RunResult]] = [None] * len(resolved)
    for i, result in _iter_indexed(resolved, workers=workers,
                                   cache=cache, cache_dir=cache_dir,
                                   timeout=timeout, retries=retries,
                                   backoff=backoff, on_error=on_error,
                                   fabric=fabric):
        ordered[i] = result
        if on_result is not None:
            on_result(result)
    return ResultSet(ordered)


def compare(name_or_scenario: ScenarioLike,
            modes: _t.Sequence[str] = MODES, *,
            workers: _t.Optional[int] = None,
            cache: _t.Optional[bool] = None,
            cache_dir: _t.Optional[_t.Any] = None,
            timeout: _t.Optional[float] = None,
            retries: int = 0,
            backoff: float = 0.5,
            on_error: str = "raise",
            fabric: _t.Optional[_t.Any] = None,
            **overrides: _t.Any) -> ResultSet:
    """The paper's headline artifact as one call: the same workload in
    several execution modes, returned as a :class:`ResultSet` ordered
    like ``modes``.

    ``name_or_scenario`` may be:

    * a registry *family* prefix — ``"example:hpccg"`` — when
      ``<prefix>:<mode>`` is registered for every requested mode (the
      registered points may differ in more than ``mode``, e.g. the
      doubled per-logical problem of the Figure 5 convention);
    * a single registered name or a :class:`Scenario`, from which the
      other modes are derived by replacing ``mode`` only.
    """
    if isinstance(name_or_scenario, str):
        _ensure_registry()
        from .scenarios import get_scenario, scenario_names
        names = set(scenario_names())
        if all(f"{name_or_scenario}:{m}" in names for m in modes):
            points = [get_scenario(f"{name_or_scenario}:{m}")
                      .with_overrides(overrides) for m in modes]
            return sweep(points, workers=workers, cache=cache,
                         cache_dir=cache_dir, timeout=timeout,
                         retries=retries, backoff=backoff,
                         on_error=on_error, fabric=fabric)
    base = scenario(name_or_scenario, **overrides)
    points = [base.replace(mode=m) for m in modes]
    return sweep(points, workers=workers, cache=cache,
                 cache_dir=cache_dir, timeout=timeout, retries=retries,
                 backoff=backoff, on_error=on_error, fabric=fabric)
