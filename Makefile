PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test lint detcheck fuzz bench bench-all docs-check api-check \
	profile figures clean

## tier-1 test suite (what CI gates on)
test:
	$(PYTHON) -m pytest -x -q

## static analysis: the repo's determinism/oracle-discipline linter
## (rule catalog: docs/static-analysis.md), the optional third-party
## checks (ruff + mypy — skipped with a notice when not installed;
## `pip install -e .[lint]` enables them), and the hash-seed variance
## smoke check (one tiny scenario under two PYTHONHASHSEED values must
## produce byte-identical RunResult JSON)
lint:
	$(PYTHON) -m repro.analysis.lint
	$(PYTHON) tools/run_static_checks.py
	$(PYTHON) -m repro.analysis.detcheck

## the hash-seed variance smoke check alone (~5 s)
detcheck:
	$(PYTHON) -m repro.analysis.detcheck

## the standing oracle-matrix differential harness at full budget
## (>= 200 generated scenarios x every toggle leg x cold/warm cache;
## tier-1 runs the same tests at the small smoke budget)
fuzz:
	REPRO_FUZZ_PROFILE=differential $(PYTHON) -m pytest \
	    tests/differential tests/scenarios/test_backend_fuzz.py -q

## regenerate benchmarks/BENCH_sim_core.json (engine events/sec, fig5b
## sweep wall-time legs, batched-dispatch legs, fabric service/store
## legs) and print the tables; test_perf_engine.py rewrites the JSON,
## the others merge their legs in, so the order matters
bench:
	$(PYTHON) -m pytest benchmarks/test_perf_engine.py \
	    benchmarks/test_perf_batch.py benchmarks/test_perf_backend.py \
	    benchmarks/test_perf_fabric.py -q -s

## docs: executable snippets in docs/*.md + intra-repo markdown links
docs-check:
	$(PYTHON) -m pytest tests/docs -q
	$(PYTHON) tools/check_md_links.py

## public API surface: repro.__all__ must match tools/public_api.txt
api-check:
	$(PYTHON) tools/check_public_api.py

## every figure-regeneration benchmark (tables under benchmarks/_results/)
bench-all:
	$(PYTHON) -m pytest benchmarks -q -s

## profile the fig5b sweep hot path (top 30 by cumulative time)
profile:
	$(PYTHON) -c "import cProfile, pstats; \
	from repro.experiments.fig5 import fig5b; \
	pr = cProfile.Profile(); pr.enable(); \
	fig5b(process_counts=(8, 16)); pr.disable(); \
	pstats.Stats(pr).sort_stats('cumulative').print_stats(30)"

## regenerate all paper tables (parallel, cached)
figures:
	$(PYTHON) -m repro.experiments --workers 2

clean:
	rm -rf .perf_cache benchmarks/_results/.sweep_cache
	find . -name __pycache__ -prune -exec rm -rf {} +
