#!/usr/bin/env python
"""Fault tolerance demo: crash a replica mid-section and watch the
survivor finish the job (paper §III-B2, Figure 2).

Scenario: one logical process runs a GTC-style ``inout`` section
(pos += vel, so the new value depends on the old one).  We crash the
executing replica at the nastiest possible moment — after its update
for the *positions* array hit the wire but before the *velocities*
update — the true-dependence hazard of Figure 2.  The survivor restores
its protection copy and re-executes, landing on the correct state.

We then run the identical scenario with protection disabled
(CopyStrategy.NONE) to reproduce the *incorrect* execution of
Figure 2b.

The run configuration is a :class:`repro.scenarios.Scenario`; only the
hook-precise crash trigger (which fires *between two protocol
messages*, not at a virtual time) is attached imperatively through
``repro.run``'s ``before_run`` hook (which therefore bypasses the
sweep cache — a hooked run is not a pure function of the scenario).  A
declarative library twin — same section shape, time-triggered crash —
is registered as ``example:failure-injection``.

Run:  python examples/failure_injection.py
"""

import sys

import numpy as np

import repro
from repro.apps.common import finish
from repro.intra import (CopyStrategy, Intra_Section_begin,
                         Intra_Section_end, Intra_Task_launch,
                         Intra_Task_register, Tag)
from repro.replication import FailureInjector
from repro.scenarios import Scenario

N = 8


def program(ctx, comm):
    """One section with a single inout task: pos += vel; vel *= 2."""
    pos = np.arange(N, dtype=np.float64)
    vel = np.ones(N, dtype=np.float64)

    def push(p, v):
        p += v          # reads and writes p: INOUT
        v *= 2.0        # reads and writes v: INOUT

    Intra_Section_begin(ctx)
    tid = Intra_Task_register(ctx, push, [Tag.INOUT, Tag.INOUT],
                              cost=lambda p, v: (100.0, 1e6))
    Intra_Task_launch(ctx, tid, [pos, vel])
    yield from Intra_Section_end(ctx)
    return finish(ctx, (pos.copy(), vel.copy()))


def run(copy_strategy):
    scenario = Scenario(app=f"{__name__}:program", n_logical=1,
                        mode="intra", fd_delay=10e-6,
                        copy_strategy=copy_strategy)
    plans = []

    def inject(world, job):
        # kill the executing replica (replica 0 owns the single task)
        # right after the `pos` update is injected, before `vel`'s
        injector = FailureInjector(job.manager)
        plans.append(injector.kill_on_hook(
            0, 0, "update_injected",
            when=lambda task, arg, **kw: arg == 0))

    result = repro.run(scenario, before_run=inject)
    assert plans[0].fired, "the crash was injected"
    pos, vel = result.value
    return pos, vel, result


def main(tiny: bool = False):
    del tiny  # this demo is already tiny (N = 8)
    expect_pos = np.arange(N) + 1.0
    expect_vel = np.full(N, 2.0)

    print("Crash scenario: executor dies after sending pos, before vel "
          "(Figure 2's partial update)\n")

    pos, vel, result = run(CopyStrategy.LAZY)
    ok = np.allclose(pos, expect_pos) and np.allclose(vel, expect_vel)
    print("with inout protection (Algorithm 1, LAZY copies):")
    print(f"  survivor re-executed "
          f"{result.intra['tasks_reexecuted']:.0f} task(s), "
          f"recoveries={result.intra['recoveries']:.0f}")
    print(f"  pos = {pos[:4]} ...  vel = {vel[:4]} ...  "
          f"-> {'CORRECT' if ok else 'WRONG'}")
    assert ok

    pos, vel, unprotected = run(CopyStrategy.NONE)
    wrong = not np.allclose(pos, expect_pos)
    print("\nwithout protection (Figure 2b's broken run):")
    print(f"  pos = {pos[:4]} ...  (expected {expect_pos[:4]})")
    print(f"  -> {'INCORRECT, as the paper predicts' if wrong else '??'}")
    assert wrong, "the unprotected run must corrupt pos"
    print("\nThe extra copy of inout variables is exactly what makes "
          "task re-execution safe.")
    return repro.ResultSet([result, unprotected])


if __name__ == "__main__":
    main(tiny="--tiny" in sys.argv[1:])
