#!/usr/bin/env python
"""Fault tolerance demo: crash a replica mid-section and watch the
survivor finish the job (paper §III-B2, Figure 2).

Scenario: one logical process runs a GTC-style ``inout`` section
(pos += vel, so the new value depends on the old one).  We crash the
executing replica at the nastiest possible moment — after its update
for the *positions* array hit the wire but before the *velocities*
update — the true-dependence hazard of Figure 2.  The survivor restores
its protection copy and re-executes, landing on the correct state.

We then run the identical scenario with protection disabled
(CopyStrategy.NONE) to reproduce the *incorrect* execution of
Figure 2b.

Run:  python examples/failure_injection.py
"""

import numpy as np

from repro.intra import (CopyStrategy, Intra_Section_begin,
                         Intra_Section_end, Intra_Task_launch,
                         Intra_Task_register, Tag, launch_intra_job)
from repro.mpi import MpiWorld
from repro.netmodel import GRID5000_MACHINE, GRID5000_NETWORK, Cluster
from repro.replication import FailureInjector

N = 8


def program(ctx, comm):
    """One section with a single inout task: pos += vel; vel *= 2."""
    pos = np.arange(N, dtype=np.float64)
    vel = np.ones(N, dtype=np.float64)

    def push(p, v):
        p += v          # reads and writes p: INOUT
        v *= 2.0        # reads and writes v: INOUT

    Intra_Section_begin(ctx)
    tid = Intra_Task_register(ctx, push, [Tag.INOUT, Tag.INOUT],
                              cost=lambda p, v: (100.0, 1e6))
    Intra_Task_launch(ctx, tid, [pos, vel])
    yield from Intra_Section_end(ctx)
    return pos.copy(), vel.copy()


def run(copy_strategy):
    world = MpiWorld(Cluster(4, GRID5000_MACHINE), GRID5000_NETWORK)
    job = launch_intra_job(world, program, 1, fd_delay=10e-6,
                           copy_strategy=copy_strategy)
    injector = FailureInjector(job.manager)
    # kill the executing replica (replica 0 owns the single task) right
    # after the `pos` update is injected, before the `vel` update
    plan = injector.kill_on_hook(
        0, 0, "update_injected", when=lambda task, arg, **kw: arg == 0)
    world.run()
    assert plan.fired, "the crash was injected"
    survivor = job.manager.alive_replicas(0)[0]
    pos, vel = survivor.app_process.value
    stats = survivor.ctx.intra.stats
    return pos, vel, stats


def main():
    expect_pos = np.arange(N) + 1.0
    expect_vel = np.full(N, 2.0)

    print("Crash scenario: executor dies after sending pos, before vel "
          "(Figure 2's partial update)\n")

    pos, vel, stats = run(CopyStrategy.LAZY)
    ok = np.allclose(pos, expect_pos) and np.allclose(vel, expect_vel)
    print("with inout protection (Algorithm 1, LAZY copies):")
    print(f"  survivor re-executed {stats.tasks_reexecuted} task(s), "
          f"recoveries={stats.recoveries}")
    print(f"  pos = {pos[:4]} ...  vel = {vel[:4]} ...  "
          f"-> {'CORRECT' if ok else 'WRONG'}")
    assert ok

    pos, vel, _stats = run(CopyStrategy.NONE)
    wrong = not np.allclose(pos, expect_pos)
    print("\nwithout protection (Figure 2b's broken run):")
    print(f"  pos = {pos[:4]} ...  (expected {expect_pos[:4]})")
    print(f"  -> {'INCORRECT, as the paper predicts' if wrong else '??'}")
    assert wrong, "the unprotected run must corrupt pos"
    print("\nThe extra copy of inout variables is exactly what makes "
          "task re-execution safe.")


if __name__ == "__main__":
    main()
