#!/usr/bin/env python
"""HPCCG end to end: the full conjugate-gradient mini-app in all three
modes, reproducing the Figure 5b effect at laptop scale.

Fixed physical resources (16 processes): the native run uses 16 ranks;
the replicated runs use 8 logical ranks x 2 replicas with the
per-logical problem doubled — the paper's weak-scaling methodology.
Intra-parallelization is applied to ddot and sparsemv only ("since it
does not provide good performance with waxpby", §V-C).

Run:  python examples/hpccg_modes.py
"""

from repro.apps.hpccg import HpccgConfig, hpccg_program
from repro.analysis import fixed_resource_efficiency, format_table
from repro.experiments import run_mode

PHYSICAL_PROCS = 16
BASE = HpccgConfig(nx=16, ny=16, nz=16, max_iter=8,
                   intra_kernels=frozenset({"ddot", "spmv"}))


def main():
    native = run_mode("native", hpccg_program, PHYSICAL_PROCS, BASE)
    doubled = BASE.with_doubled_z()
    sdr = run_mode("sdr", hpccg_program, PHYSICAL_PROCS // 2, doubled)
    intra = run_mode("intra", hpccg_program, PHYSICAL_PROCS // 2, doubled)

    rows = []
    for run, label in ((native, "Open MPI"), (sdr, "SDR-MPI"),
                       (intra, "intra")):
        residual, iters = run.value
        rows.append([
            label, run.wall_time * 1e3,
            fixed_resource_efficiency(native.wall_time, run.wall_time),
            residual,
        ])
    print(format_table(
        ["mode", "CG solve (ms)", "efficiency", "final residual"],
        rows,
        title=f"HPCCG, {PHYSICAL_PROCS} physical processes, "
              f"{BASE.max_iter} CG iterations "
              "(paper Fig. 5b: SDR 0.5, intra ~0.8)"))
    print("\nPer-kernel breakdown (native):")
    for k in ("spmv", "ddot", "waxpby", "halo"):
        print(f"  {k:8s} {native.timers.get(k, 0.0) * 1e3:8.2f} ms")
    print("\nAll three modes computed the same residual — replication "
          "is numerically transparent.")


if __name__ == "__main__":
    main()
