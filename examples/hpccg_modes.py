#!/usr/bin/env python
"""HPCCG end to end: the full conjugate-gradient mini-app in all three
modes, reproducing the Figure 5b effect at laptop scale.

Fixed physical resources (16 processes): the native run uses 16 ranks;
the replicated runs use 8 logical ranks x 2 replicas with the
per-logical problem doubled — the paper's weak-scaling methodology.
Intra-parallelization is applied to ddot and sparsemv only ("since it
does not provide good performance with waxpby", §V-C).

The three configurations are the registered scenarios
``example:hpccg:{native,sdr,intra}`` (shared — cache included — with
``python -m repro.experiments run example:hpccg:intra``).

Run:  python examples/hpccg_modes.py [--tiny]
"""

import sys

import repro
from repro.analysis import fixed_resource_efficiency, format_table
from repro.scenarios import get_scenario
from repro.scenarios.catalog import tiny_overrides

MODES = ("native", "sdr", "intra")


def scenarios(tiny: bool = False):
    out = [get_scenario(f"example:hpccg:{mode}") for mode in MODES]
    if tiny:
        # shrunk but convention-preserving: native keeps 2x the ranks,
        # the replicated runs keep the doubled per-logical problem
        out = [s.with_overrides(tiny_overrides("hpccg", s.mode))
               for s in out]
    return out


def main(tiny: bool = False):
    ss = scenarios(tiny)
    results = repro.sweep(ss)
    native, sdr, intra = results
    n_physical = ss[0].n_logical
    max_iter = ss[0].config.max_iter

    rows = []
    for run, label in ((native, "Open MPI"), (sdr, "SDR-MPI"),
                       (intra, "intra")):
        residual, iters = run.value
        rows.append([
            label, run.wall_time * 1e3,
            fixed_resource_efficiency(native.wall_time, run.wall_time),
            residual,
        ])
    print(format_table(
        ["mode", "CG solve (ms)", "efficiency", "final residual"],
        rows,
        title=f"HPCCG, {n_physical} physical processes, "
              f"{max_iter} CG iterations "
              "(paper Fig. 5b: SDR 0.5, intra ~0.8)"))
    print("\nPer-kernel breakdown (native):")
    for k in ("spmv", "ddot", "waxpby", "halo"):
        print(f"  {k:8s} {native.timers.get(k, 0.0) * 1e3:8.2f} ms")
    print("\nAll three modes computed the same residual — replication "
          "is numerically transparent.")
    return results


if __name__ == "__main__":
    main(tiny="--tiny" in sys.argv[1:])
