#!/usr/bin/env python
"""The paper's motivation, quantified (§II): when does replication beat
checkpoint-restart — and what does breaking the 50% wall buy?

Sweeps machine size with the analytic models of
:mod:`repro.analysis.ccr_model`:

* plain coordinated checkpoint-restart (Daly-optimal interval),
* replication (degree 2) + rare checkpoints, whose MTTI survives
  ~sqrt(N) failures [16] — capped at 50% efficiency,
* the same replication with intra-parallelization's measured
  application efficiencies layered on top (HPCCG 0.8, GTC 0.7),
  showing the head-room the paper's technique unlocks.

Run:  python examples/exascale_model.py
"""

from repro.analysis import (format_table, mnfti_degree2,
                            plain_ccr_efficiency,
                            replicated_ccr_efficiency)

NODE_MTBF_YEARS = 5.0
CHECKPOINT_MIN = 15.0
RESTART_MIN = 15.0
#: application efficiency of intra-parallelization relative to the 0.5
#: replication cap (from our Figure 5b / 6c reproductions)
INTRA_GAIN = {"HPCCG (Fig 5b)": 0.80 / 0.50, "GTC (Fig 6c)": 0.71 / 0.50}


def main():
    node_mtbf = NODE_MTBF_YEARS * 365 * 24 * 3600
    delta, restart = CHECKPOINT_MIN * 60, RESTART_MIN * 60
    rows = []
    for n in (1_000, 10_000, 100_000, 1_000_000):
        e_ccr = plain_ccr_efficiency(n, node_mtbf, delta, restart)
        e_rep = replicated_ccr_efficiency(n // 2, node_mtbf, delta,
                                          restart)
        rows.append([
            f"{n:,}", node_mtbf / n / 3600.0, e_ccr, e_rep,
            e_rep * INTRA_GAIN["HPCCG (Fig 5b)"],
            e_rep * INTRA_GAIN["GTC (Fig 6c)"],
        ])
    print(format_table(
        ["processes", "system MTBF (h)", "cCR", "replication",
         "+intra (HPCCG)", "+intra (GTC)"],
        rows,
        title=f"Workload efficiency vs machine size "
              f"({NODE_MTBF_YEARS:.0f}y node MTBF, "
              f"{CHECKPOINT_MIN:.0f}min checkpoints)"))
    print(f"\nMean failures to interruption at 500k logical ranks "
          f"(degree 2): {mnfti_degree2(500_000):,.0f} "
          f"(grows ~sqrt(N), per [16])")
    print("At exascale-like failure rates plain cCR collapses; "
          "replication holds ~50%;\nintra-parallelization is what "
          "pushes the replicated system beyond the wall.")


if __name__ == "__main__":
    main()
