#!/usr/bin/env python
"""The paper's motivation, quantified (§II): when does replication beat
checkpoint-restart — and what does breaking the 50% wall buy?

Sweeps machine size with the analytic models of
:mod:`repro.analysis.ccr_model`:

* plain coordinated checkpoint-restart (Daly-optimal interval),
* replication (degree 2) + rare checkpoints, whose MTTI survives
  ~sqrt(N) failures [16] — capped at 50% efficiency,
* the same replication with intra-parallelization's efficiencies
  *measured from the registered scenarios* ``example:hpccg:*`` and
  ``example:gtc:*`` (our Figure 5b / 6c reproductions) layered on top,
  showing the head-room the paper's technique unlocks.

Run:  python examples/exascale_model.py [--tiny]
"""

import sys

import repro
from repro.analysis import (doubled_resource_efficiency,
                            fixed_resource_efficiency, format_table,
                            mnfti_degree2)
from repro.experiments import ccr_vs_replication
from repro.scenarios import get_scenario
from repro.scenarios.catalog import tiny_overrides

NODE_MTBF_YEARS = 5.0
CHECKPOINT_MIN = 15.0
RESTART_MIN = 15.0


def measured_intra_gains(tiny: bool = False):
    """Intra-parallelization efficiency relative to the 0.5 replication
    cap, simulated from the registered example scenarios (cached by
    scenario hash, so re-runs are free)."""
    gains = {}
    measured = repro.ResultSet()
    for label, app, convention in (("HPCCG (Fig 5b)", "hpccg", "fixed"),
                                   ("GTC (Fig 6c)", "gtc", "doubled")):
        native_s = get_scenario(f"example:{app}:native")
        intra_s = get_scenario(f"example:{app}:intra")
        if tiny:
            native_s = native_s.with_overrides(
                tiny_overrides(app, "native"))
            intra_s = intra_s.with_overrides(tiny_overrides(app, "intra"))
        results = repro.sweep([native_s, intra_s])
        native, intra = results
        eff_fn = (fixed_resource_efficiency if convention == "fixed"
                  else doubled_resource_efficiency)
        eff = eff_fn(native.wall_time, intra.wall_time)
        gains[label] = eff / 0.5
        measured = measured + results
    return gains, measured


def main(tiny: bool = False):
    intra_gain, measured = measured_intra_gains(tiny)
    rows_in = ccr_vs_replication(
        proc_counts=(1_000, 10_000, 100_000, 1_000_000),
        node_mtbf_years=NODE_MTBF_YEARS,
        checkpoint_minutes=CHECKPOINT_MIN, restart_minutes=RESTART_MIN)
    rows = []
    for r in rows_in:
        rows.append([
            f"{r.n_procs:,}", r.system_mtbf_hours, r.ccr_efficiency,
            r.replication_efficiency,
            r.replication_efficiency * intra_gain["HPCCG (Fig 5b)"],
            r.replication_efficiency * intra_gain["GTC (Fig 6c)"],
        ])
    print(format_table(
        ["processes", "system MTBF (h)", "cCR", "replication",
         "+intra (HPCCG)", "+intra (GTC)"],
        rows,
        title=f"Workload efficiency vs machine size "
              f"({NODE_MTBF_YEARS:.0f}y node MTBF, "
              f"{CHECKPOINT_MIN:.0f}min checkpoints)"))
    print(f"\nmeasured intra gains over the 0.5 cap: "
          + ", ".join(f"{k}: {v:.2f}x" for k, v in intra_gain.items()))
    print(f"Mean failures to interruption at 500k logical ranks "
          f"(degree 2): {mnfti_degree2(500_000):,.0f} "
          f"(grows ~sqrt(N), per [16])")
    print("At exascale-like failure rates plain cCR collapses; "
          "replication holds ~50%;\nintra-parallelization is what "
          "pushes the replicated system beyond the wall.")
    return measured


if __name__ == "__main__":
    main(tiny="--tiny" in sys.argv[1:])
