#!/usr/bin/env python
"""Quickstart: intra-parallelize the paper's waxpby kernel (Figure 3/4).

Runs ``w = alpha*x + beta*y`` three ways on a simulated cluster —
plain MPI, classic state-machine replication (every replica recomputes
everything), and intra-parallelization (replicas split the work and
exchange results) — and prints the virtual execution times.

The program below is the paper's Figure 4 in this library's API; the
*same source* runs in all three modes because the mode lives in the
:class:`repro.scenarios.Scenario` spec, not in the code.  (A library
twin of this study is registered as ``example:waxpby:<mode>`` — see
``python -m repro.experiments --list``.)

The point the paper makes with this exact kernel: waxpby's *output is
as large as its input*, so shipping updates costs more than recomputing
— intra-parallelization is slower than plain replication here (compare
with examples/hpccg_modes.py where ddot/sparsemv win big).

Run:  python examples/quickstart.py [--tiny]
"""

import sys

import numpy as np

import repro
from repro.intra import (Intra_Section_begin, Intra_Section_end,
                         Intra_Task_launch, Intra_Task_register, Tag)
from repro.kernels import split_range, waxpby, waxpby_cost
from repro.netmodel import GRID5000_MACHINE
from repro.scenarios import Scenario

N = 2_000_000          # vector length per logical process
N_TASKS = 8            # paper §V-B: 8 tasks per section


def program(ctx, comm, n):
    """One MPI rank: a single intra-parallel waxpby section over ``n``
    elements (``n`` rides in the scenario config, so the spec fully
    describes the run — and caches correctly)."""
    x = np.arange(n, dtype=np.float64)
    y = np.ones(n, dtype=np.float64)
    w = np.zeros(n, dtype=np.float64)

    Intra_Section_begin(ctx)
    task_id = Intra_Task_register(
        ctx, waxpby, [Tag.IN, Tag.IN, Tag.IN, Tag.IN, Tag.OUT],
        cost=waxpby_cost)
    for sl in split_range(n, N_TASKS):
        Intra_Task_launch(ctx, task_id,
                          [2.0, x[sl], 0.5, y[sl], w[sl]])
    yield from Intra_Section_end(ctx)

    # replicas are consistent here: w == 2x + 0.5y on every copy
    assert np.allclose(w, 2.0 * x + 0.5 * y)
    return ctx.now


def main(tiny: bool = False):
    n = 20_000 if tiny else N
    print(f"waxpby, n = {n:,} per logical process, {N_TASKS} tasks/section")
    print(f"machine: {GRID5000_MACHINE.name} "
          f"(paper's Grid'5000 testbed model)\n")
    # the scenario spec carries the whole configuration (the app
    # reference points back at this module's program); repro.compare
    # derives the three modes and returns one ResultSet
    base = Scenario(app=f"{__name__}:program", config=n, n_logical=4)
    results = repro.compare(base)
    t_native = results.filter(mode="native")[0].wall_time
    for run in results:
        # constant problem, doubled resources (Figure 6 convention):
        # replicated modes use 2x the hardware, so equal time = 50%.
        factor = 1.0 if run.mode == "native" else 0.5
        label = {"native": "Open MPI (no replication)",
                 "sdr": "SDR-MPI  (classic replication)",
                 "intra": "intra    (work sharing)"}[run.mode]
        print(f"  {label:34s} {run.wall_time * 1e3:8.2f} ms "
              f"(efficiency {factor * t_native / run.wall_time:.2f})")
    print("\nAs in Figure 5a: for waxpby the update transfer outweighs "
          "the saved computation,\nso intra-parallelization loses to "
          "plain replication on this kernel.")
    return results


if __name__ == "__main__":
    main(tiny="--tiny" in sys.argv[1:])
