#!/usr/bin/env python
"""Quickstart: intra-parallelize the paper's waxpby kernel (Figure 3/4).

Runs ``w = alpha*x + beta*y`` three ways on a simulated 4-node cluster —
plain MPI, classic state-machine replication (every replica recomputes
everything), and intra-parallelization (replicas split the work and
exchange results) — and prints the virtual execution times.

The point the paper makes with this exact kernel: waxpby's *output is
as large as its input*, so shipping updates costs more than recomputing
— intra-parallelization is slower than plain replication here (compare
with examples/hpccg_modes.py where ddot/sparsemv win big).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.intra import (Intra_Section_begin, Intra_Section_end,
                         Intra_Task_launch, Intra_Task_register, Tag,
                         launch_mode)
from repro.kernels import split_range, waxpby, waxpby_cost
from repro.mpi import MpiWorld
from repro.netmodel import GRID5000_MACHINE, GRID5000_NETWORK, Cluster

N = 2_000_000          # vector length per logical process
N_TASKS = 8            # paper §V-B: 8 tasks per section


def program(ctx, comm):
    """One MPI rank: a single intra-parallel waxpby section.

    This is the paper's Figure 4, in this library's API.  The same
    source runs in all three modes; only the launcher changes.
    """
    x = np.arange(N, dtype=np.float64)
    y = np.ones(N, dtype=np.float64)
    w = np.zeros(N, dtype=np.float64)

    Intra_Section_begin(ctx)
    task_id = Intra_Task_register(
        ctx, waxpby, [Tag.IN, Tag.IN, Tag.IN, Tag.IN, Tag.OUT],
        cost=waxpby_cost)
    for sl in split_range(N, N_TASKS):
        Intra_Task_launch(ctx, task_id,
                          [2.0, x[sl], 0.5, y[sl], w[sl]])
    yield from Intra_Section_end(ctx)

    # replicas are consistent here: w == 2x + 0.5y on every copy
    assert np.allclose(w, 2.0 * x + 0.5 * y)
    return ctx.now


def main():
    print(f"waxpby, n = {N:,} per logical process, {N_TASKS} tasks/section")
    print(f"machine: {GRID5000_MACHINE.name} "
          f"(paper's Grid'5000 testbed model)\n")
    times = {}
    for mode in ("native", "sdr", "intra"):
        world = MpiWorld(Cluster(4, GRID5000_MACHINE), GRID5000_NETWORK)
        job = launch_mode(mode, world, program, 4)
        world.run()
        if mode == "native":
            t = max(job.results())
        else:
            t = max(max(row) for row in job.results())
        times[mode] = t
        # constant problem, doubled resources (Figure 6 convention):
        # replicated modes use 2x the hardware, so equal time = 50%.
        factor = 1.0 if mode == "native" else 0.5
        label = {"native": "Open MPI (no replication)",
                 "sdr": "SDR-MPI  (classic replication)",
                 "intra": "intra    (work sharing)"}[mode]
        print(f"  {label:34s} {t * 1e3:8.2f} ms "
              f"(efficiency {factor * times['native'] / t:.2f})")
    print("\nAs in Figure 5a: for waxpby the update transfer outweighs "
          "the saved computation,\nso intra-parallelization loses to "
          "plain replication on this kernel.")


if __name__ == "__main__":
    main()
