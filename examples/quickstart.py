#!/usr/bin/env python
"""Quickstart: intra-parallelize the paper's waxpby kernel (Figure 3/4).

Runs ``w = alpha*x + beta*y`` three ways on a simulated cluster —
plain MPI, classic state-machine replication (every replica recomputes
everything), and intra-parallelization (replicas split the work and
exchange results) — and prints the virtual execution times.

The program below is the paper's Figure 4 in this library's API; the
*same source* runs in all three modes because the mode lives in the
:class:`repro.scenarios.Scenario` spec, not in the code.  (A library
twin of this study is registered as ``example:waxpby:<mode>`` — see
``python -m repro.experiments --list``.)

The point the paper makes with this exact kernel: waxpby's *output is
as large as its input*, so shipping updates costs more than recomputing
— intra-parallelization is slower than plain replication here (compare
with examples/hpccg_modes.py where ddot/sparsemv win big).

Run:  python examples/quickstart.py [--tiny]
"""

import sys

import numpy as np

from repro.intra import (Intra_Section_begin, Intra_Section_end,
                         Intra_Task_launch, Intra_Task_register, Tag)
from repro.kernels import split_range, waxpby, waxpby_cost
from repro.netmodel import GRID5000_MACHINE
from repro.scenarios import Scenario, run_scenario

N = 2_000_000          # vector length per logical process
N_TASKS = 8            # paper §V-B: 8 tasks per section


def program(ctx, comm):
    """One MPI rank: a single intra-parallel waxpby section."""
    x = np.arange(N, dtype=np.float64)
    y = np.ones(N, dtype=np.float64)
    w = np.zeros(N, dtype=np.float64)

    Intra_Section_begin(ctx)
    task_id = Intra_Task_register(
        ctx, waxpby, [Tag.IN, Tag.IN, Tag.IN, Tag.IN, Tag.OUT],
        cost=waxpby_cost)
    for sl in split_range(N, N_TASKS):
        Intra_Task_launch(ctx, task_id,
                          [2.0, x[sl], 0.5, y[sl], w[sl]])
    yield from Intra_Section_end(ctx)

    # replicas are consistent here: w == 2x + 0.5y on every copy
    assert np.allclose(w, 2.0 * x + 0.5 * y)
    return ctx.now


def main(tiny: bool = False):
    global N
    if tiny:
        N = 20_000
    print(f"waxpby, n = {N:,} per logical process, {N_TASKS} tasks/section")
    print(f"machine: {GRID5000_MACHINE.name} "
          f"(paper's Grid'5000 testbed model)\n")
    times = {}
    for mode in ("native", "sdr", "intra"):
        # the scenario spec carries the whole configuration; the app
        # reference points back at this module's program
        scenario = Scenario(app=f"{__name__}:program", n_logical=4,
                            mode=mode)
        run = run_scenario(scenario)
        times[mode] = run.wall_time
        # constant problem, doubled resources (Figure 6 convention):
        # replicated modes use 2x the hardware, so equal time = 50%.
        factor = 1.0 if mode == "native" else 0.5
        label = {"native": "Open MPI (no replication)",
                 "sdr": "SDR-MPI  (classic replication)",
                 "intra": "intra    (work sharing)"}[mode]
        print(f"  {label:34s} {run.wall_time * 1e3:8.2f} ms "
              f"(efficiency {factor * times['native'] / run.wall_time:.2f})")
    print("\nAs in Figure 5a: for waxpby the update transfer outweighs "
          "the saved computation,\nso intra-parallelization loses to "
          "plain replication on this kernel.")


if __name__ == "__main__":
    main(tiny="--tiny" in sys.argv[1:])
