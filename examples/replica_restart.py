#!/usr/bin/env python
"""Replica restart in action (the §VI extension).

The paper's discussion: "it is important to restart failed replicas as
soon as possible, since speed-up of a logical process execution can
only be achieved if tasks are shared among multiple replicas."

This example runs a step-structured intra-parallelized computation,
kills one replica early, and shows the three regimes:

  no crash            — full work sharing throughout,
  crash, no restart   — the survivor computes everything alone,
  crash + restart     — state handed over at the next step boundary,
                        work sharing resumes.

The no-crash and crash-no-restart legs are plain scenarios run through
the :mod:`repro.api` facade (the crash leg carries a declarative
:class:`repro.scenarios.FixedFailures` schedule); the crash+restart
leg uses the restart coordinator (not yet scenario-expressible) on a
world built from the same spec.

Run:  python examples/replica_restart.py [--tiny]
"""

import sys

import numpy as np

import repro
from repro.apps.common import finish
from repro.intra import Tag
from repro.kernels import split_range
from repro.replication import (FailureInjector, Restartable,
                               launch_restartable_job)
from repro.scenarios import FixedFailures, Scenario, make_world

N, N_TASKS, N_STEPS = 100_000, 8, 16
CRASH_AT = 1e-3


class SumApp(Restartable):
    """Each step: partial sums of a large vector in an intra section."""

    n_steps = N_STEPS

    def init_state(self, ctx, comm):
        return {"x": np.arange(N, dtype=np.float64),
                "totals": []}

    def step(self, ctx, comm, state, step_index):
        acc = np.zeros(N_TASKS)
        rt = ctx.intra
        rt.section_begin()
        tid = rt.task_register(
            lambda v, o: np.copyto(o, v.sum()), [Tag.IN, Tag.OUT],
            cost=lambda v, o: (2.0 * v.size, 16.0 * v.size))
        for i, sl in enumerate(split_range(N, N_TASKS)):
            rt.task_launch(tid, [state["x"][sl], acc[i:i + 1]])
        yield from rt.section_end()
        state["totals"].append(float(acc.sum()))

    def snapshot(self, state):
        return {"x": state["x"].copy(), "totals": list(state["totals"])}

    def restore(self, payload):
        return {"x": payload["x"].copy(),
                "totals": list(payload["totals"])}

    def finalize(self, ctx, comm, state):
        return state["totals"][-1]


def plain_program(ctx, comm):
    """The same computation as a flat program (for the scenario legs)."""
    app = SumApp()
    state = app.init_state(ctx, comm)
    for i in range(app.n_steps):
        yield from app.step(ctx, comm, state, i)
    return finish(ctx, app.finalize(ctx, comm, state))


#: the spec all three legs share (machine, placement, mode, size)
BASE_SCENARIO = Scenario(app=f"{__name__}:plain_program", n_logical=1,
                         mode="intra")


def main(tiny: bool = False):
    global N, CRASH_AT
    restart_delay = 2e-4
    if tiny:
        # smaller vector, earlier crash, faster restart — the restart
        # must still land well before the last step boundary
        N, CRASH_AT, restart_delay = 20_000, 1e-4, 5e-5
        SumApp.n_steps = 8
    expect = float(np.arange(N, dtype=np.float64).sum())

    # no crash: the base scenario through the facade.  cache=False on
    # both facade legs because this didactic program reads module
    # globals the --tiny flag mutates, so the spec alone does not
    # describe the run.
    run_clean = repro.run(BASE_SCENARIO, cache=False)
    t_clean = run_clean.wall_time
    assert run_clean.value == expect

    # crash, no restart: declaratively — the base scenario plus a
    # fixed-time failure schedule
    run_nr = repro.run(
        BASE_SCENARIO.with_failures(FixedFailures(((0, 1, CRASH_AT),))),
        cache=False)
    t_norestart = run_nr.wall_time
    assert run_nr.value == expect
    assert run_nr.n_crashes == 1

    w = make_world(BASE_SCENARIO)
    job_r, coord = launch_restartable_job(w, SumApp(), 1,
                                          restart_delay=restart_delay)
    FailureInjector(job_r.manager).kill_at(0, 1, CRASH_AT)
    w.run()
    t_restart = w.sim.now
    for info in job_r.manager.replicas[0]:
        assert info.app_process.value == expect

    print(f"{SumApp.n_steps} steps of partial sums over {N:,} elements, "
          f"crash at {CRASH_AT * 1e3:.1f} ms\n")
    print(f"  no crash           {t_clean * 1e3:7.2f} ms")
    print(f"  crash, no restart  {t_norestart * 1e3:7.2f} ms "
          f"({t_norestart / t_clean:.2f}x)")
    print(f"  crash + restart    {t_restart * 1e3:7.2f} ms "
          f"({t_restart / t_clean:.2f}x, "
          f"{coord.restarts_completed} restart)")
    repl = job_r.manager.replica(0, 1)
    print(f"\nreplacement replica executed "
          f"{repl.ctx.intra.stats.tasks_executed} tasks after rejoining;"
          f"\nall replicas finished with the correct result ({expect:g}).")
    # the facade-expressible legs, as structured results (the restart
    # leg needs the coordinator, which is not yet scenario data)
    return repro.ResultSet([run_clean, run_nr])


if __name__ == "__main__":
    main(tiny="--tiny" in sys.argv[1:])
