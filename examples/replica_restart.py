#!/usr/bin/env python
"""Replica restart in action (the §VI extension) — now fully
declarative.

The paper's discussion: "it is important to restart failed replicas as
soon as possible, since speed-up of a logical process execution can
only be achieved if tasks are shared among multiple replicas."

Restart is scenario-expressible: a
:class:`repro.scenarios.RestartPolicy` on the scenario tells the
runner to respawn dead replicas and hand application state over at the
next step boundary — no imperative coordinator wiring in user code.
This example runs the step-structured ``stepsum`` library app through
the :mod:`repro.api` facade in three regimes:

  no crash            — full work sharing throughout,
  crash, no restart   — the survivor computes everything alone,
  crash + restart     — state handed over at the next step boundary,
                        work sharing resumes.

All three legs are plain scenarios: the crash is a declarative
:class:`repro.scenarios.FixedFailures` schedule and the healing a
declarative policy, so every leg runs (and caches, and sweeps) like
any other scenario.  A whole storm × policy grid is registered as the
``restart:*`` scenarios — see ``docs/scenarios.md``.

Run:  python examples/replica_restart.py [--tiny]
"""

import sys

import repro
from repro.apps.steploop import StepSumConfig
from repro.scenarios import FixedFailures, RestartPolicy, Scenario

#: the spec all three legs share (machine, placement, mode, size)
BASE_SCENARIO = Scenario(app="stepsum", config=StepSumConfig(),
                         n_logical=1, mode="intra")
CRASH_AT = 1e-3
RESTART = RestartPolicy(delay=2e-4)


def main(tiny: bool = False):
    base, crash_at, policy = BASE_SCENARIO, CRASH_AT, RESTART
    if tiny:
        # smaller vector, earlier crash, faster restart — the restart
        # must still land well before the last step boundary
        base = base.replace(config=StepSumConfig(n=20_000, n_steps=8))
        crash_at, policy = 1e-4, RestartPolicy(delay=5e-5)
    cfg = base.config

    run_clean = repro.run(base)
    run_norestart = repro.run(
        base.with_failures(FixedFailures(((0, 1, crash_at),))))
    run_restart = repro.run(run_norestart.scenario.with_restart(policy))

    expect = float(cfg.n) * (cfg.n - 1) / 2.0   # sum of arange(n)
    for run in (run_clean, run_norestart, run_restart):
        assert run.value == expect
    assert run_norestart.n_crashes == run_restart.n_crashes == 1
    assert run_restart.intra["restarts_completed"] == 1.0

    t_clean = run_clean.wall_time
    t_norestart = run_norestart.wall_time
    t_restart = run_restart.wall_time
    print(f"{cfg.n_steps} steps of partial sums over {cfg.n:,} "
          f"elements, crash at {crash_at * 1e3:.1f} ms\n")
    print(f"  no crash           {t_clean * 1e3:7.2f} ms")
    print(f"  crash, no restart  {t_norestart * 1e3:7.2f} ms "
          f"({t_norestart / t_clean:.2f}x)")
    print(f"  crash + restart    {t_restart * 1e3:7.2f} ms "
          f"({t_restart / t_clean:.2f}x, "
          f"{run_restart.intra['restarts_completed']:.0f} restart, "
          f"policy: respawn after {policy.delay * 1e6:.0f} µs)")
    print(f"\nall legs finished with the correct result ({expect:g});")
    print("the restart leg is pure scenario data — sweep the "
          "registered restart:* grid for whole failure storms.")
    return repro.ResultSet([run_clean, run_norestart, run_restart])


if __name__ == "__main__":
    main(tiny="--tiny" in sys.argv[1:])
