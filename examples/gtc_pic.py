#!/usr/bin/env python
"""GTC-like particle-in-cell run: the paper's `inout` showcase
(Figure 6c).

The push kernel advances particle positions from their current values —
the textbook case for declaring variables ``inout`` (§IV): every update
must be protected by an extra copy so a mid-update crash cannot create
a true dependence between re-executions.

This example runs the registered ``example:gtc:{native,sdr,intra}``
scenarios, reports the Figure 6c efficiencies and the measured
inout-copy overhead (paper: ~6% on the affected tasks), and verifies
the physics checksum matches across modes.

Run:  python examples/gtc_pic.py [--tiny]
"""

import sys

import repro
from repro.analysis import doubled_resource_efficiency, format_table
from repro.scenarios import get_scenario
from repro.scenarios.catalog import tiny_overrides

MODES = ("native", "sdr", "intra")


def scenarios(tiny: bool = False):
    out = [get_scenario(f"example:gtc:{mode}") for mode in MODES]
    if tiny:
        out = [s.with_overrides(tiny_overrides("gtc", s.mode))
               for s in out]
    return out


def main(tiny: bool = False):
    ss = scenarios(tiny)
    results = repro.sweep(ss)
    native, sdr, intra = results
    n_logical = ss[0].n_logical

    rows = []
    for run, label, procs in ((native, "Open MPI", n_logical),
                              (sdr, "SDR-MPI", 2 * n_logical),
                              (intra, "intra", 2 * n_logical)):
        eff = (1.0 if run is native else
               doubled_resource_efficiency(native.wall_time,
                                           run.wall_time))
        rows.append([label, procs, run.wall_time * 1e3, eff])
    print(format_table(
        ["mode", "physical procs", "time (ms)", "efficiency"], rows,
        title="GTC-like PIC (paper Fig. 6c: SDR 0.49, intra 0.71)"))

    sections = sum(native.timers.get(k, 0.0) for k in ("charge", "push"))
    print(f"\ncharge+push share of native runtime: "
          f"{sections / native.wall_time:.0%} (paper: 75%)")
    copy = intra.intra.get("copy_time", 0.0)
    compute = intra.intra.get("task_compute_time", 1.0)
    print(f"inout extra-copy overhead on affected tasks: "
          f"{copy / compute:.1%} (paper: ~6%)")
    assert native.value == sdr.value == intra.value
    print(f"physics checksum identical in all modes: {native.value}")
    return results


if __name__ == "__main__":
    main(tiny="--tiny" in sys.argv[1:])
