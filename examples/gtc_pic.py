#!/usr/bin/env python
"""GTC-like particle-in-cell run: the paper's `inout` showcase
(Figure 6c).

The push kernel advances particle positions from their current values —
the textbook case for declaring variables ``inout`` (§IV): every update
must be protected by an extra copy so a mid-update crash cannot create
a true dependence between re-executions.

This example runs the PIC stepper in the three modes, reports the
Figure 6c efficiencies and the measured inout-copy overhead (paper:
~6% on the affected tasks), and verifies the physics checksum matches
across modes.

Run:  python examples/gtc_pic.py
"""

from repro.analysis import doubled_resource_efficiency, format_table
from repro.apps.gtc import GtcConfig, gtc_program
from repro.experiments import run_mode

CFG = GtcConfig(particles_per_rank=65536, cells_per_rank=64, steps=3)
N_LOGICAL = 8


def main():
    native = run_mode("native", gtc_program, N_LOGICAL, CFG)
    sdr = run_mode("sdr", gtc_program, N_LOGICAL, CFG)
    intra = run_mode("intra", gtc_program, N_LOGICAL, CFG)

    rows = []
    for run, label, procs in ((native, "Open MPI", N_LOGICAL),
                              (sdr, "SDR-MPI", 2 * N_LOGICAL),
                              (intra, "intra", 2 * N_LOGICAL)):
        eff = (1.0 if run is native else
               doubled_resource_efficiency(native.wall_time,
                                           run.wall_time))
        rows.append([label, procs, run.wall_time * 1e3, eff])
    print(format_table(
        ["mode", "physical procs", "time (ms)", "efficiency"], rows,
        title="GTC-like PIC (paper Fig. 6c: SDR 0.49, intra 0.71)"))

    sections = sum(native.timers.get(k, 0.0) for k in ("charge", "push"))
    print(f"\ncharge+push share of native runtime: "
          f"{sections / native.wall_time:.0%} (paper: 75%)")
    copy = intra.intra.get("copy_time", 0.0)
    compute = intra.intra.get("task_compute_time", 1.0)
    print(f"inout extra-copy overhead on affected tasks: "
          f"{copy / compute:.1%} (paper: ~6%)")
    assert native.value == sdr.value == intra.value
    print(f"physics checksum identical in all modes: {native.value}")


if __name__ == "__main__":
    main()
