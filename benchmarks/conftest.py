"""Benchmark harness conventions.

Every benchmark regenerates one table/figure of the paper, prints it in
the paper's format (run pytest with ``-s`` to see the tables), saves it
under ``benchmarks/_results/``, and asserts the *shape* of the result —
who wins, by roughly what factor — rather than absolute numbers (the
substrate is a calibrated simulator, not the authors' testbed).

Benchmarks run a full discrete-event simulation once per measurement,
so they use ``benchmark.pedantic(rounds=1)``.
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "_results"


@pytest.fixture
def save_table():
    """Print a result table and persist it for EXPERIMENTS.md."""
    def _save(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}")

    return _save


@pytest.fixture
def run_once(benchmark):
    """Run a zero-argument experiment exactly once under
    pytest-benchmark timing."""
    def _run(fn):
        return benchmark.pedantic(fn, rounds=1, iterations=1)

    return _run
