"""Array-backend performance gate → ``benchmarks/BENCH_sim_core.json``.

Two measurements for the pluggable engine backend
(``Simulator(backend="array")`` — staged event table, batched
same-timestamp firing, pooled wake rows), merged into the shared
``BENCH_sim_core.json`` as the ``engine_backend`` leg:

* **plain-timeout microbench** — ``PROCS`` processes each yielding
  ``YIELDS`` plain timeouts, the pure event-kernel workload of
  ``test_perf_engine.py`` scaled up to where batching pays
  (1024 same-timestamp processes per step).  Timed *paired and
  interleaved* — each round runs the python oracle
  (``Simulator(fast=False)``, the seed-equivalent baseline every
  recorded engine speedup is quoted against) and the array backend
  back to back, so CPU-frequency drift hits both legs alike; the gate
  takes the best round (least-noise estimate on a shared box) and
  asserts **≥ 5×** events/sec.
* **fig5b warm serial** — the end-to-end Figure 5b sweep under
  ``REPRO_ENGINE=array`` semantics (backend toggled process-wide),
  warm CSR cache, serial.  Gated **≥ 2×** against the host-calibrated
  seed measurement, exactly like ``test_perf_engine.py``'s headline
  gate: the seed tree's pinned wall time is scaled by the in-tree
  baseline leg measured in the same session.  (The array backend is
  *not* expected to beat the warm python engine here — fig5b is
  kernel-dominated, with only ~6% of its events on the engine wake
  path — the gate pins that backend dispatch keeps the full 2×
  end-to-end win intact.)

Run via ``make bench`` (or ``pytest benchmarks/test_perf_backend.py -s``).
"""

import json
import pathlib
import statistics
import time

import repro.simulate.engine as engine_mod
from repro.experiments.fig5 import fig5b
from repro.kernels import clear_csr_cache, set_csr_cache_enabled
from repro.simulate import Simulator, set_engine_backend

BENCH_JSON = pathlib.Path(__file__).parent / "BENCH_sim_core.json"

#: pinned seed measurement + its same-session baseline leg, shared with
#: test_perf_engine.py (not importable across bench modules under
#:  pytest's rootdir import mode — keep the two files in sync)
SEED_FIG5B_S = 2.57
PINNED_BASELINE_S = 1.45

#: microbench shape: wide same-timestamp cohorts are where the array
#: backend's batched firing pays; 1024 × 94 keeps one leg under ~0.5 s
PROCS = 1024
YIELDS = 94
ROUNDS = 8
FIG5B_POINTS = (8, 16)

#: microbench acceptance floor: array events/sec vs the python oracle
MICRO_GATE = 5.0
#: fig5b acceptance floor vs the host-calibrated seed measurement
FIG5B_GATE = 2.0


def _spin(sim, yields):
    for _ in range(yields):
        yield sim.sleep(1.0)


def _events_per_sec(**sim_kwargs) -> float:
    sim = Simulator(**sim_kwargs)
    for _ in range(PROCS):
        sim.process(_spin(sim, YIELDS))
    n_events = PROCS * YIELDS + 2 * PROCS
    t0 = time.perf_counter()
    sim.run()
    return n_events / (time.perf_counter() - t0)


def _time_fig5b(repeats: int = 3) -> float:
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fig5b(process_counts=FIG5B_POINTS)
        samples.append(time.perf_counter() - t0)
    return statistics.median(samples)


def test_bench_engine_backend(save_table):
    # ---- microbench: paired interleaved rounds, best ratio --------
    rounds = []
    for _ in range(ROUNDS):
        oracle = _events_per_sec(fast=False)
        array = _events_per_sec(backend="array")
        rounds.append((oracle, array, array / oracle))
    best_oracle, best_array, best_ratio = max(rounds, key=lambda r: r[2])

    # ---- fig5b: in-tree baseline (calibrates the pinned seed time) -
    prev_fast = engine_mod.FAST_DEFAULT
    engine_mod.FAST_DEFAULT = False
    prev_cache = set_csr_cache_enabled(False)
    clear_csr_cache()
    try:
        baseline_sweep = _time_fig5b()
    finally:
        engine_mod.FAST_DEFAULT = prev_fast
        set_csr_cache_enabled(prev_cache)

    # ---- fig5b: array backend, warm CSR cache, serial -------------
    prev_backend = set_engine_backend("array")
    try:
        _time_fig5b(repeats=1)          # prime the CSR cache
        array_serial = _time_fig5b()
    finally:
        set_engine_backend(prev_backend)

    seed_here = SEED_FIG5B_S * (baseline_sweep / PINNED_BASELINE_S)
    fig5b_speedup = seed_here / array_serial

    try:
        payload = json.loads(BENCH_JSON.read_text())
    except (OSError, ValueError):
        payload = {}
    payload.update({
        "engine_backend": {
            "workload": f"{PROCS} procs x {YIELDS} plain-timeout yields, "
                        f"best of {ROUNDS} paired rounds",
            "events": PROCS * YIELDS + 2 * PROCS,
            "events_per_sec_python_oracle": round(best_oracle),
            "events_per_sec_array": round(best_array),
            "microbench_speedup": round(best_ratio, 3),
            "fig5b_baseline_serial_cold_s": round(baseline_sweep, 4),
            "fig5b_array_serial_warm_s": round(array_serial, 4),
            "fig5b_speedup_vs_seed": round(fig5b_speedup, 3),
        },
    })
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    lines = ["Array-backend benchmark (BENCH_sim_core.json: engine_backend)",
             "metric                        | value",
             "------------------------------+----------------",
             f"micro events/sec python       | {best_oracle:>12,.0f}",
             f"micro events/sec array        | {best_array:>12,.0f}",
             f"micro speedup (best paired)   | {best_ratio:>10.2f} x",
             f"fig5b baseline serial cold    | {baseline_sweep:>10.3f} s",
             f"fig5b array serial warm       | {array_serial:>10.3f} s",
             f"fig5b speedup vs seed         | {fig5b_speedup:>10.2f} x"]
    save_table("bench_engine_backend", "\n".join(lines))

    assert best_ratio >= MICRO_GATE, (
        f"array backend is only {best_ratio:.2f}x the python oracle on "
        f"the plain-timeout microbench (need >= {MICRO_GATE}x)")
    assert fig5b_speedup >= FIG5B_GATE, (
        f"fig5b under the array backend is only {fig5b_speedup:.2f}x "
        f"faster than the recorded seed measurement (need >= "
        f"{FIG5B_GATE}x)")
