"""Extension bench: intra-parallelization beyond degree 2.

The paper fixes replication degree 2 ("the most appropriate replication
degree when dealing with crash failures", §V-B).  This sweep shows the
performance side of that choice: per-replica compute shrinks like 1/d,
but every executed task must ship its update to d−1 siblings, so the
update traffic grows linearly with the degree and eats the gain.
"""

from repro.analysis import format_table
from repro.experiments import degree_sweep


def test_degree_sweep(run_once, save_table):
    rows = run_once(lambda: degree_sweep(degrees=(1, 2, 3)))
    table = format_table(
        ["replication degree", "time (ms)", "efficiency",
         "update KB/replica"],
        [[r.degree, r.time * 1e3, r.efficiency, r.update_bytes / 1e3]
         for r in rows],
        title="Intra-parallelization vs replication degree "
              "(fixed physical resources)")
    save_table("extension_degree", table)

    by = {r.degree: r for r in rows}
    # degree 1 is the native baseline
    assert by[1].efficiency == 1.0
    assert by[1].update_bytes == 0.0
    # higher degrees: monotone efficiency loss ...
    assert by[1].efficiency > by[2].efficiency > by[3].efficiency
    # ... driven by linearly growing update traffic
    assert by[3].update_bytes > 1.8 * by[2].update_bytes
    # degree 2 stays well above the 50% classic-replication wall;
    # degree 3 stays above its 1/3 wall
    assert by[2].efficiency > 0.6
    assert by[3].efficiency > 1 / 3
