"""Figure 5b: HPCCG application weak scaling.

Paper (128/256/512 physical processes): SDR-MPI holds efficiency 0.5;
intra (applied to ddot + sparsemv only) holds ~0.8 (0.80/0.79/0.82) —
flat across scale, the paper's scalability evidence.
"""

from repro.analysis import format_table
from repro.experiments import fig5b


def test_fig5b_hpccg_weak_scaling(run_once, save_table):
    rows = run_once(lambda: fig5b(process_counts=(8, 16, 32)))
    table = format_table(
        ["physical procs", "mode", "time (ms)", "efficiency"],
        [[r.physical_processes, r.mode, r.time * 1e3, r.efficiency]
         for r in rows],
        title="Figure 5b — HPCCG weak scaling (paper: SDR 0.5; intra "
              "0.80/0.79/0.82)")
    save_table("fig5b", table)

    sdr = [r for r in rows if r.mode == "SDR-MPI"]
    intra = [r for r in rows if r.mode == "intra"]
    # SDR pinned at ~0.5
    for r in sdr:
        assert abs(r.efficiency - 0.5) < 0.06
    # intra well above the 50% wall (paper ~0.8)
    for r in intra:
        assert r.efficiency > 0.72
    # flat across scale (the paper's scalability argument): spread of
    # intra efficiency under 5 points
    effs = [r.efficiency for r in intra]
    assert max(effs) - min(effs) < 0.05
    # intra strictly between SDR and native at every scale
    for s, i in zip(sdr, intra):
        assert s.efficiency < i.efficiency < 1.0
