"""inout-protection ablation (paper §III-B2).

"In practice, both solutions have a similar cost, since an extra copy
of each problematic variable is either made when entering the section
(with our solution) or at the time an update is received (with the
alternative)."  We implemented the copy-at-entry (EAGER), the
copy-at-receive of Algorithm 1 (LAZY) and the atomic-buffered
alternative (ATOMIC) and verify cost parity on GTC.
"""

from repro.analysis import format_table
from repro.experiments import copy_strategy_comparison


def test_copy_strategies_have_similar_cost(run_once, save_table):
    rows = run_once(copy_strategy_comparison)
    table = format_table(
        ["strategy", "GTC time (ms)", "relative to best"],
        [[r.value, r.time * 1e3, r.efficiency] for r in rows],
        title="inout copy-strategy ablation (paper: 'similar cost')")
    save_table("ablation_copy_strategy", table)

    times = [r.time for r in rows]
    # §III-B2's parity claim: all strategies within 10% of each other
    assert max(times) < 1.10 * min(times)
