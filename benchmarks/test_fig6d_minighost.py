"""Figure 6d: MiniGhost.

Paper: SDR 0.49, intra 0.51 — the stencil's full-grid output defeats
intra-parallelization, leaving only the grid summation (~10% of
runtime), so the gain over plain replication is marginal.
"""

from repro.analysis import format_table
from repro.experiments import fig6d, minighost_stencil_ablation


def test_fig6d_minighost(run_once, save_table):
    rows = run_once(fig6d)
    table = format_table(
        ["app", "mode", "procs", "time (ms)", "efficiency",
         "sections frac"],
        [[r.app, r.mode, r.physical_processes, r.time * 1e3,
          r.efficiency, r.sections_fraction] for r in rows],
        title="Figure 6d — MiniGhost (paper: SDR 0.49, intra 0.51, "
              "sections ~10%)")
    save_table("fig6d", table)

    by = {r.mode: r for r in rows}
    assert abs(by["SDR-MPI"].efficiency - 0.5) < 0.04
    # marginal gain only (paper: 0.51)
    assert 0.50 <= by["intra"].efficiency < 0.60
    # only the grid summation is in sections — a small share
    assert by["Open MPI"].sections_fraction < 0.25


def test_fig6d_stencil_in_section_does_not_pay(run_once, save_table):
    """§V-D's negative result: forcing the 27-pt stencil into sections
    gives 'around the same' or worse performance, because the output is
    a full new 3D grid."""
    rows = run_once(minighost_stencil_ablation)
    table = format_table(
        ["stencil in section", "time (ms)", "efficiency"],
        [[r.value, r.time * 1e3, r.efficiency] for r in rows],
        title="MiniGhost stencil ablation (paper: not applied — "
              "'performance around the same as without')")
    save_table("fig6d_stencil_ablation", table)

    without, with_stencil = rows[0], rows[1]
    # no meaningful gain from intra-parallelizing the stencil
    assert with_stencil.efficiency < without.efficiency + 0.02
