"""Extension bench: efficiency under failures (paper §VI discussion).

"With intra-parallelization, it is important to restart failed replicas
as soon as possible, since speed-up of a logical process execution can
only be achieved if tasks are shared among multiple replicas."  We
quantify that: the earlier a replica dies, the longer the survivor runs
alone and the closer application efficiency falls to the SDR floor.
"""

from repro.analysis import format_table
from repro.experiments import failure_time_sweep


def test_failure_time_sweep(run_once, save_table):
    rows = run_once(lambda: failure_time_sweep(
        fractions=(0.1, 0.5, 0.9)))
    table = format_table(
        ["crash at (frac of run)", "time (ms)", "efficiency",
         "tasks re-executed"],
        [["none" if r.crash_fraction < 0 else r.crash_fraction,
          r.time * 1e3, r.efficiency, r.reexecuted] for r in rows],
        title="HPCCG intra efficiency vs crash time "
              "(§VI: restart replicas quickly)")
    save_table("extension_failure_sweep", table)

    clean = rows[0]
    by_frac = {r.crash_fraction: r for r in rows[1:]}
    # no crash: the Figure 5b efficiency
    assert clean.efficiency > 0.75
    # an early crash degrades essentially to the SDR floor (survivor
    # executes everything for nearly the whole run)
    assert by_frac[0.1].efficiency < 0.58
    # the later the crash, the less efficiency is lost — monotone
    assert (by_frac[0.1].efficiency < by_frac[0.5].efficiency
            < by_frac[0.9].efficiency < clean.efficiency)
    # even the worst case never falls below the 50% replication wall
    # (minus a small recovery overhead)
    assert by_frac[0.1].efficiency > 0.45
