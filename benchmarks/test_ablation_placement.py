"""Replica-placement ablation (paper §VI).

"Replicas should be positioned on neighboring nodes to avoid network
contention but at the same time, they should be placed in such a way
that the probability of correlated failures is low."  On a
distance-sensitive topology, pushing replicas apart degrades intra
efficiency — quantifying one side of that trade-off.
"""

from repro.analysis import format_table
from repro.experiments import placement_sweep


def test_placement_spread(run_once, save_table):
    rows = run_once(lambda: placement_sweep(spreads=(1, 4, 16)))
    table = format_table(
        ["replica spread (nodes)", "ddot time (ms)",
         "intra efficiency"],
        [[r.value, r.time * 1e3, r.efficiency] for r in rows],
        title="Replica placement ablation (linear topology, 2 us/hop)")
    save_table("ablation_placement", table)

    eff = {r.value: r.efficiency for r in rows}
    # neighbouring replicas (the paper's choice) are the best placement
    assert eff[1] > eff[4] > eff[16]
    # distant replicas lose a substantial share of the intra gain
    assert eff[1] - eff[16] > 0.1
