"""Task-granularity ablation (paper §V-B).

"All experiments with intra-parallelization use a granularity of 8
tasks per section ... Having fewer tasks reduces the opportunities of
overlapping updates transfer and computation.  Having more tasks can
create overhead because it increases synchronization between replicas."
"""

import dataclasses

from repro.analysis import fixed_resource_efficiency, format_table
from repro.apps.hpccg import KernelBenchConfig, hpccg_kernel_bench
from repro.experiments import granularity_sweep, run_mode


def test_granularity_sweep_sparsemv(run_once, save_table):
    rows = run_once(lambda: granularity_sweep(
        task_counts=(1, 2, 4, 8, 16, 32, 64)))
    table = format_table(
        ["tasks/section", "time (ms)", "intra efficiency"],
        [[r.value, r.time * 1e3, r.efficiency] for r in rows],
        title="Granularity ablation, sparsemv (paper default: 8)")
    save_table("ablation_granularity_spmv", table)

    eff = {r.value: r.efficiency for r in rows}
    # 1 task per section: no work sharing possible beyond 1-vs-1 split
    # and no overlap -> clearly worst
    assert eff[1] < eff[8] - 0.2
    # the paper's default (8) is within a whisker of the best setting
    assert eff[8] > max(eff.values()) - 0.05


def test_granularity_sweep_ddot_shows_sync_overhead(run_once,
                                                    save_table):
    """ddot's tiny per-task compute makes the per-task synchronization
    overhead visible: efficiency *degrades* beyond the sweet spot."""
    def sweep():
        base = KernelBenchConfig(nx=32, ny=32, nz=16, reps=3,
                                 kernels=("ddot",))
        native = run_mode("native", hpccg_kernel_bench, 8, base)
        t_native = native.timers["ddot"]
        out = []
        for nt in (2, 8, 64):
            cfg = dataclasses.replace(base.with_doubled_z(),
                                      tasks_per_section=nt)
            intra = run_mode("intra", hpccg_kernel_bench, 8, cfg)
            out.append((nt, fixed_resource_efficiency(
                t_native, intra.timers["ddot"])))
        return out

    rows = run_once(sweep)
    table = format_table(["tasks/section", "intra efficiency"],
                         [[nt, e] for nt, e in rows],
                         title="Granularity ablation, ddot")
    save_table("ablation_granularity_ddot", table)
    eff = dict(rows)
    # too many tasks: synchronization overhead dominates the tiny
    # per-task compute (the paper's "more tasks can create overhead")
    assert eff[64] < eff[8]
