"""Figure 5a: HPCCG kernels under the three modes.

Paper's numbers (512 cores, 128³/process): efficiency 0.5 for SDR-MPI on
every kernel; intra 0.34 (waxpby — *worse* than plain replication),
0.99 (ddot), 0.94 (sparsemv); the non-overlapped update transfer
("intra updates") dominates the waxpby intra bar.
"""

from repro.analysis import format_table
from repro.experiments import fig5a


def test_fig5a_hpccg_kernels(run_once, save_table):
    rows = run_once(lambda: fig5a(n_logical=8))
    table = format_table(
        ["kernel", "mode", "time (ms)", "normalized", "efficiency",
         "exposed updates (ms)"],
        [[r.kernel, r.mode, r.time * 1e3, r.normalized, r.efficiency,
          r.exposed_update_time * 1e3] for r in rows],
        title="Figure 5a — HPCCG kernels (paper: SDR 0.5 everywhere; "
              "intra waxpby 0.34 / ddot 0.99 / sparsemv 0.94)")
    save_table("fig5a", table)

    by = {(r.kernel, r.mode): r for r in rows}
    # SDR-MPI: the 50% wall on every kernel
    for kernel in ("waxpby", "ddot", "sparsemv"):
        assert abs(by[(kernel, "SDR-MPI")].efficiency - 0.5) < 0.03
        assert by[(kernel, "Open MPI")].efficiency == 1.0
    # intra: waxpby pays more in updates than it saves in compute —
    # *below* plain replication (paper 0.34)
    assert by[("waxpby", "intra")].efficiency < 0.45
    # ...while ddot (scalar updates) and sparsemv (matrix-streaming
    # compute hides vector updates) approach 1 (paper 0.99 / 0.94)
    assert by[("ddot", "intra")].efficiency > 0.88
    assert by[("sparsemv", "intra")].efficiency > 0.88
    # ordering: ddot/sparsemv intra beat SDR; waxpby intra loses to SDR
    assert (by[("waxpby", "intra")].time
            > by[("waxpby", "SDR-MPI")].time)
    assert by[("ddot", "intra")].time < by[("ddot", "SDR-MPI")].time
    assert (by[("sparsemv", "intra")].time
            < by[("sparsemv", "SDR-MPI")].time)
    # the dashed area: waxpby's intra time is mostly exposed transfers
    wax = by[("waxpby", "intra")]
    assert wax.exposed_update_time > 0.4 * wax.time
    # ...but sparsemv overlaps nearly everything
    spv = by[("sparsemv", "intra")]
    assert spv.exposed_update_time < 0.1 * spv.time
