"""Figure 6b: AMG2013, 7-point stencil, GMRES solver.

Paper: SDR 0.49, intra 0.59, sections 42% of native runtime.  The
7-point operator streams far less matrix per row than the 27-point one,
and GMRES adds orthogonalization work, so the intra gain is smaller
than Figure 6a — both in the paper and here.
"""

from repro.analysis import format_table
from repro.experiments import fig6a, fig6b


def test_fig6b_amg_gmres(run_once, save_table):
    rows = run_once(fig6b)
    table = format_table(
        ["app", "mode", "procs", "time (ms)", "efficiency",
         "sections frac"],
        [[r.app, r.mode, r.physical_processes, r.time * 1e3,
          r.efficiency, r.sections_fraction] for r in rows],
        title="Figure 6b — AMG2013-like GMRES 7pt (paper: SDR 0.49, "
              "intra 0.59, sections 42%)")
    save_table("fig6b", table)

    by = {r.mode: r for r in rows}
    assert abs(by["SDR-MPI"].efficiency - 0.5) < 0.04
    assert 0.54 < by["intra"].efficiency < 0.70   # paper: 0.59
    assert by["intra"].time < by["SDR-MPI"].time
    # smaller sections share than the 27-pt PCG problem (42% vs 62% in
    # the paper)
    assert by["Open MPI"].sections_fraction < 0.65


def test_fig6b_gmres_gains_less_than_pcg(run_once, save_table):
    """Cross-figure shape: the 7-pt GMRES problem benefits less from
    intra-parallelization than the 27-pt PCG problem (0.59 < 0.61 in
    the paper; the gap is wider here for the same reason the fractions
    differ)."""
    def both():
        return fig6a(), fig6b()

    rows_a, rows_b = run_once(both)
    eff_a = {r.mode: r.efficiency for r in rows_a}["intra"]
    eff_b = {r.mode: r.efficiency for r in rows_b}["intra"]
    save_table("fig6ab_gap",
               f"intra efficiency: PCG-27pt {eff_a:.3f} vs GMRES-7pt "
               f"{eff_b:.3f} (paper: 0.61 vs 0.59)")
    assert eff_b < eff_a
