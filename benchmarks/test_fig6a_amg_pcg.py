"""Figure 6a: AMG2013, 27-point stencil, PCG solver.

Paper (252 native / 504 replicated processes, 100³/process): SDR 0.48,
intra 0.61, with intra-parallelized sections covering 62% of the native
runtime.  Our AMG substitute (geometric-MG block-Jacobi preconditioner,
see DESIGN.md) is more spmv-heavy — sections ≈ 0.75 — so intra lands
proportionally higher (≈ 0.74); the SDR floor and the
sections-fraction→efficiency relation are preserved.
"""

from repro.analysis import format_table
from repro.experiments import fig6a


def test_fig6a_amg_pcg(run_once, save_table):
    rows = run_once(fig6a)
    table = format_table(
        ["app", "mode", "procs", "time (ms)", "efficiency",
         "sections frac"],
        [[r.app, r.mode, r.physical_processes, r.time * 1e3,
          r.efficiency, r.sections_fraction] for r in rows],
        title="Figure 6a — AMG2013-like PCG 27pt (paper: SDR 0.48, "
              "intra 0.61, sections 62%)")
    save_table("fig6a", table)

    by = {r.mode: r for r in rows}
    assert abs(by["SDR-MPI"].efficiency - 0.5) < 0.04
    # intra beats the 50% wall, bounded by the sections share:
    # E <= 0.5 / (1 - f/2)
    f = by["Open MPI"].sections_fraction
    assert 0.55 < by["intra"].efficiency <= 0.5 / (1 - f / 2) + 0.02
    assert by["intra"].time < by["SDR-MPI"].time
    # the substituted preconditioner is spmv-dominated
    assert 0.6 < f < 0.9
