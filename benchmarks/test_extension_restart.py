"""Extension bench: replica restart recovers the intra efficiency.

§VI: "it is important to restart failed replicas as soon as possible,
since speed-up of a logical process execution can only be achieved if
tasks are shared among multiple replicas ... the cost of starting a new
replica is low in general [19].  This result makes us think that
intra-replication will perform well in real test-case scenarios
including failures."  We measure exactly that: an early crash *without*
restart degrades the run toward SDR speed; with restart, the survivor
hands over state at the next step boundary and work sharing resumes.
"""

import numpy as np

from repro.analysis import format_table
from repro.intra import Tag, launch_intra_job
from repro.kernels import split_range
from repro.mpi import MpiWorld
from repro.netmodel import GRID5000_MACHINE, GRID5000_NETWORK, Cluster
from repro.replication import (FailureInjector, Restartable,
                               launch_restartable_job)

N = 200_000
N_TASKS = 8
N_STEPS = 12
CRASH_AT = 0.002  # ~15% into the run


class StepApp(Restartable):
    """ddot-like compute-heavy step (favourable intra ratio)."""

    n_steps = N_STEPS

    def init_state(self, ctx, comm):
        return {"x": np.arange(N, dtype=np.float64),
                "acc": np.zeros(N_TASKS)}

    def step(self, ctx, comm, state, step_index):
        rt = ctx.intra
        rt.section_begin()
        tid = rt.task_register(
            lambda v, o: np.copyto(o, v.sum()), [Tag.IN, Tag.OUT],
            cost=lambda v, o: (2.0 * v.size, 16.0 * v.size))
        for i, sl in enumerate(split_range(N, N_TASKS)):
            rt.task_launch(tid, [state["x"][sl],
                                 state["acc"][i:i + 1]])
        yield from rt.section_end()

    def snapshot(self, state):
        return {"x": state["x"].copy(), "acc": state["acc"].copy()}

    def restore(self, payload):
        return {"x": payload["x"].copy(), "acc": payload["acc"].copy()}

    def finalize(self, ctx, comm, state):
        return float(state["acc"].sum())


def _world():
    return MpiWorld(Cluster(4, GRID5000_MACHINE), GRID5000_NETWORK)


def run_with_restart(crash=True):
    world = _world()
    job, coord = launch_restartable_job(world, StepApp(), 2,
                                        restart_delay=2e-4)
    if crash:
        FailureInjector(job.manager).kill_at(0, 1, CRASH_AT)
    world.run()
    return world.sim.now, coord.restarts_completed, job


def run_without_restart(crash=True):
    app = StepApp()

    def program(ctx, comm):
        state = app.init_state(ctx, comm)
        for i in range(app.n_steps):
            yield from app.step(ctx, comm, state, i)
        return app.finalize(ctx, comm, state)

    world = _world()
    job = launch_intra_job(world, program, 2)
    if crash:
        FailureInjector(job.manager).kill_at(0, 1, CRASH_AT)
    world.run()
    return world.sim.now, job


def test_restart_recovers_intra_efficiency(run_once, save_table):
    def experiment():
        t_clean, _restarts, _ = run_with_restart(crash=False)
        t_norestart, _ = run_without_restart(crash=True)
        t_restart, restarts, job = run_with_restart(crash=True)
        return t_clean, t_norestart, t_restart, restarts, job

    t_clean, t_norestart, t_restart, restarts, job = run_once(experiment)
    table = format_table(
        ["scenario", "time (ms)", "slowdown vs clean"],
        [["no crash", t_clean * 1e3, 1.0],
         ["crash, no restart", t_norestart * 1e3,
          t_norestart / t_clean],
         ["crash + restart", t_restart * 1e3, t_restart / t_clean]],
        title="Replica restart (§VI): crash at ~15% of the run")
    save_table("extension_restart", table)

    assert restarts == 1
    # without restart the survivor computes alone for 85% of the run:
    # a large slowdown
    assert t_norestart > 1.35 * t_clean
    # restart recovers most of it; the remaining gap is the genuine
    # cost of the handover (solo steps until the boundary + shipping
    # the state snapshot — the "cost of starting a new replica" of [19])
    assert t_restart < t_norestart * 0.85
    assert t_restart < 1.5 * t_clean
    # and the restarted replica did real work afterwards
    replacement = job.manager.replica(0, 1)
    assert replacement.ctx.intra.stats.tasks_executed > 0
