"""§II background: the cCR-vs-replication crossover that motivates the
paper ([1], [8], [16]).

At small scale, plain checkpoint-restart is far above 50% efficiency
and replication cannot compete; as the machine grows and the system
MTBF collapses, cCR drops below 50% while replication (whose MTTI
survives ~sqrt(N) failures) stays pinned just under its resource cap —
which is exactly the 50%-wall intra-parallelization then breaks.
"""

from repro.analysis import format_table
from repro.experiments import ccr_vs_replication, crossover_point


def test_ccr_vs_replication_crossover(run_once, save_table):
    rows = run_once(ccr_vs_replication)
    table = format_table(
        ["processes", "system MTBF (h)", "cCR efficiency",
         "replication efficiency"],
        [[r.n_procs, r.system_mtbf_hours, r.ccr_efficiency,
          r.replication_efficiency] for r in rows],
        title="Background model — cCR vs replication+rare-cCR "
              "(5 y/node MTBF, 15 min checkpoints)")
    save_table("background_ccr", table)

    # small machine: cCR wins comfortably
    assert rows[0].ccr_efficiency > 0.8
    assert rows[0].replication_efficiency < 0.5
    # large machine: cCR collapses below the 50% wall ...
    assert rows[-1].ccr_efficiency < 0.5
    # ... while replication stays near its cap
    assert rows[-1].replication_efficiency > 0.4
    # a crossover exists at intermediate scale
    assert crossover_point(rows) is not None
    # cCR efficiency is monotonically decreasing with machine size
    effs = [r.ccr_efficiency for r in rows]
    assert effs == sorted(effs, reverse=True)
