"""Figure 6c: GTC particle-in-cell.

Paper (256 native / 512 replicated): SDR 0.49, intra 0.71; charge+push
(the intra-parallelized kernels) account for 75% of native runtime;
the `inout` extra copy adds ≈ 6% on the affected tasks.
"""

from repro.analysis import format_table
from repro.experiments import fig6c, inout_overhead


def test_fig6c_gtc(run_once, save_table):
    rows = run_once(fig6c)
    table = format_table(
        ["app", "mode", "procs", "time (ms)", "efficiency",
         "sections frac"],
        [[r.app, r.mode, r.physical_processes, r.time * 1e3,
          r.efficiency, r.sections_fraction] for r in rows],
        title="Figure 6c — GTC (paper: SDR 0.49, intra 0.71, "
              "charge+push = 75%)")
    save_table("fig6c", table)

    by = {r.mode: r for r in rows}
    assert abs(by["SDR-MPI"].efficiency - 0.5) < 0.04
    assert 0.62 < by["intra"].efficiency < 0.82   # paper: 0.71
    # charge + push dominate like in the paper's profile (75%)
    assert 0.65 < by["Open MPI"].sections_fraction < 0.85
    assert by["intra"].time < by["SDR-MPI"].time


def test_fig6c_inout_copy_overhead(run_once, save_table):
    """The extra-copy cost of declaring positions/velocities inout
    (paper: ≈ 6% on the affected tasks)."""
    frac = run_once(inout_overhead)
    save_table("fig6c_inout",
               f"inout extra-copy overhead on affected tasks: "
               f"{frac * 100:.1f}% (paper: ~6%)")
    assert 0.005 < frac < 0.12
