"""Fabric performance benchmark → ``benchmarks/BENCH_sim_core.json``.

Two measurements, recorded per PR under the ``"fabric"`` key:

* **warm-hit service throughput** — concurrent clients hammering
  ``GET /result/<key>`` for a point that is already in the SQLite
  store; the acceptance gate requires ≥ 100 req/s (the ISSUE's service
  performance bar, comfortably cleared by the threaded stdlib server);
* **store get/put microbench** — the same payload written and read
  back through both ``ResultStore`` backends, so the cost of the
  SQLite index relative to the sharded-file oracle is tracked.

Run via ``make bench`` (or ``pytest benchmarks/test_perf_fabric.py -s``).
"""

import concurrent.futures
import json
import pathlib
import tempfile
import time
import urllib.request

import repro
from repro.fabric import Fabric
from repro.fabric.serve import make_server
from repro.fabric.store import open_store

BENCH_JSON = pathlib.Path(__file__).parent / "BENCH_sim_core.json"

NAME = "example:hpccg:intra"
CLIENTS = 8
REQUESTS_PER_CLIENT = 50
STORE_OPS = 200


def _service_throughput(tmp) -> dict:
    import threading
    with Fabric(tmp / "fabric", backend="sqlite") as fab:
        key = fab.enqueue_scenario(repro.scenario(NAME))
        fab.drain()                       # warm the store
        server = make_server(fab)
        thread = threading.Thread(target=server.serve_forever,
                                  daemon=True)
        thread.start()
        url = f"{server.url}/result/{key}"

        def one_client(n):
            ok = 0
            for _ in range(n):
                with urllib.request.urlopen(url, timeout=30.0) as resp:
                    ok += resp.status == 200
            return ok

        try:
            one_client(5)                 # connection warm-up
            t0 = time.perf_counter()
            with concurrent.futures.ThreadPoolExecutor(CLIENTS) as pool:
                done = sum(pool.map(one_client,
                                    [REQUESTS_PER_CLIENT] * CLIENTS))
            dt = time.perf_counter() - t0
        finally:
            server.shutdown()
            server.server_close()
    assert done == CLIENTS * REQUESTS_PER_CLIENT
    return {"clients": CLIENTS, "requests": done,
            "seconds": round(dt, 4),
            "req_per_sec": round(done / dt, 1)}


def _store_microbench(tmp, backend: str) -> dict:
    payload = b"x" * 4096                 # ~a pickled ModeRun's size
    keys = [f"{i:064x}" for i in range(STORE_OPS)]
    store = open_store(tmp / backend, backend)
    t0 = time.perf_counter()
    for k in keys:
        store.put(k, payload)
    put_dt = time.perf_counter() - t0
    t0 = time.perf_counter()
    for k in keys:
        assert store.get(k) is not None
    get_dt = time.perf_counter() - t0
    store.close()
    return {"ops": STORE_OPS,
            "put_per_sec": round(STORE_OPS / put_dt, 1),
            "get_per_sec": round(STORE_OPS / get_dt, 1)}


def test_bench_fabric(save_table):
    with tempfile.TemporaryDirectory() as d:
        tmp = pathlib.Path(d)
        service = _service_throughput(tmp)
        file_store = _store_microbench(tmp, "file")
        sqlite_store = _store_microbench(tmp, "sqlite")

    try:
        payload = json.loads(BENCH_JSON.read_text())
    except (OSError, ValueError):
        payload = {}
    payload["fabric"] = {
        "service_warm_hits": service,
        "store_file": file_store,
        "store_sqlite": sqlite_store,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    lines = ["Fabric benchmark (BENCH_sim_core.json: fabric)",
             "metric                      | value",
             "----------------------------+----------------",
             f"service warm req/s          | "
             f"{service['req_per_sec']:>12,.1f}",
             f"  ({service['clients']} clients x "
             f"{REQUESTS_PER_CLIENT} reqs, SQLite store)",
             f"file store put/s            | "
             f"{file_store['put_per_sec']:>12,.1f}",
             f"file store get/s            | "
             f"{file_store['get_per_sec']:>12,.1f}",
             f"sqlite store put/s          | "
             f"{sqlite_store['put_per_sec']:>12,.1f}",
             f"sqlite store get/s          | "
             f"{sqlite_store['get_per_sec']:>12,.1f}"]
    save_table("bench_fabric", "\n".join(lines))

    # the ISSUE's service bar: >= 100 warm hits/sec under concurrency
    assert service["req_per_sec"] >= 100.0, (
        f"warm-hit service throughput is only "
        f"{service['req_per_sec']:.1f} req/s (need >= 100)")
    # both store backends must stay comfortably usable
    assert sqlite_store["get_per_sec"] > 100.0
    assert file_store["get_per_sec"] > 100.0
