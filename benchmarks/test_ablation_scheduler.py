"""Scheduler ablation (paper §V-A).

The paper uses static block scheduling and notes "more complex
strategies could be designed if needed, for instance to deal with load
imbalance".  On a deliberately imbalanced section, the alternatives we
implemented show exactly that headroom.
"""

from repro.analysis import format_table
from repro.experiments import scheduler_comparison


def test_scheduler_comparison(run_once, save_table):
    rows = run_once(scheduler_comparison)
    table = format_table(
        ["scheduler", "section time (ms)", "relative to best"],
        [[r.value, r.time * 1e3, r.efficiency] for r in rows],
        title="Scheduler ablation on an imbalanced section "
              "(task i costs ~ i+1)")
    save_table("ablation_scheduler", table)

    by = {r.value: r for r in rows}
    # cost-balanced wins on imbalanced workloads...
    assert by["cost-balanced"].time <= by["round-robin"].time
    assert by["cost-balanced"].time < by["static-block"].time
    # ...and static block (the paper's choice, fine for its balanced
    # kernels) pays a real penalty here
    assert by["static-block"].time > 1.2 * by["cost-balanced"].time
