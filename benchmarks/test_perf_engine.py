"""Simulation-core performance benchmark → ``benchmarks/BENCH_sim_core.json``.

Two measurements, recorded so the perf trajectory is tracked per PR:

* **engine events/sec** — a pure event-kernel workload (processes doing
  nothing but yielding plain timeouts), timed on the optimized engine
  and on the seed-equivalent baseline loop
  (``Simulator(fast=False)`` — the un-inlined ``step()`` dispatch
  without timeout pooling);
* **fig5b sweep wall time** — the end-to-end Figure 5b reproduction at
  ``process_counts=(8, 16)``:

  - ``seed_serial_s``: the actual seed tree's wall time, measured once
    at the seed commit and pinned (see ``SEED_FIG5B_S``);
  - ``baseline_serial_cold_s``: the reproducible in-tree approximation
    of the seed — baseline engine loop, kernel caches disabled (which
    routes through the verbatim seed-reference kernel implementations),
    serial;
  - ``optimized_serial_warm_s``: fast engine, warm CSR cache, serial;
  - ``optimized_workers2_s``: same plus ``--workers 2`` fan-out (on a
    single-core host this mostly measures pool overhead — recorded for
    honesty, the headline serial speedup does not depend on it);
  - ``cached_rerun_s``: warm on-disk sweep result cache.

The acceptance gate asserts the optimized configuration is at least 2×
faster than the recorded seed measurement, plus a reproducible margin
over the in-tree baseline legs.

Run via ``make bench`` (or ``pytest benchmarks/test_perf_engine.py -s``).
"""

import json
import os
import pathlib
import statistics
import time

import repro.simulate.engine as engine_mod
from repro.experiments.fig5 import fig5b
from repro.kernels import clear_csr_cache, set_csr_cache_enabled
from repro.perf import clear_result_cache, run_sweep
from repro.simulate import Simulator

BENCH_JSON = pathlib.Path(__file__).parent / "BENCH_sim_core.json"

#: engine microbench shape: PROCS processes × YIELDS plain timeouts
PROCS = 64
YIELDS = 1500
FIG5B_POINTS = (8, 16)

#: wall time of ``fig5b(process_counts=(8, 16))`` measured on the actual
#: seed tree (commit bb8776c, this container, 2026-07-30; two runs:
#: 2.57 s / 2.54 s).  The seed engine cannot run inside the refactored
#: tree, so the true "serial seed" datum is recorded once here; the
#: ``baseline_serial_cold_s`` leg below is its *reproducible*
#: approximation (baseline run loop + seed-reference kernel paths), but
#: it cannot switch off the structural event-layer rework (lazy
#: callbacks, waiter slot, slot reads) and therefore under-reports the
#: seed's cost.
SEED_FIG5B_S = 2.57
SEED_FIG5B_COMMIT = "bb8776c"
#: the reproducible baseline leg measured in the same container at the
#: same time as SEED_FIG5B_S.  The seed gate scales SEED_FIG5B_S by
#: (baseline-now / this), so the ≥2× assertion tracks the host's speed
#: instead of failing on slower machines / passing regressions on
#: faster ones.
PINNED_BASELINE_S = 1.45


def _spin(sim, yields):
    for _ in range(yields):
        yield sim.sleep(1.0)


def _engine_events_per_sec(fast: bool) -> dict:
    sim = Simulator(fast=fast)
    for _ in range(PROCS):
        sim.process(_spin(sim, YIELDS))
    # every yield is one timeout event + one start event per process,
    # plus one completion event per process
    n_events = PROCS * YIELDS + 2 * PROCS
    t0 = time.perf_counter()
    sim.run()
    dt = time.perf_counter() - t0
    return {"events": n_events, "seconds": dt,
            "events_per_sec": n_events / dt}


def _time_fig5b(repeats: int = 3) -> float:
    """Median wall time of the fig5b sweep over ``repeats`` runs (the
    container this runs in is noisy; a single sample can swing ±15%)."""
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fig5b(process_counts=FIG5B_POINTS)
        samples.append(time.perf_counter() - t0)
    return statistics.median(samples)


def _fig5b_point(points):
    fig5b(process_counts=tuple(points))
    return True


def test_bench_sim_core(save_table):
    # ---- engine microbenchmark ------------------------------------
    baseline_engine = _engine_events_per_sec(fast=False)
    fast_engine = _engine_events_per_sec(fast=True)

    # ---- fig5b sweep: seed-equivalent baseline --------------------
    prev_fast = engine_mod.FAST_DEFAULT
    engine_mod.FAST_DEFAULT = False
    prev_cache = set_csr_cache_enabled(False)
    clear_csr_cache()
    try:
        baseline_sweep = _time_fig5b()
    finally:
        engine_mod.FAST_DEFAULT = prev_fast
        set_csr_cache_enabled(prev_cache)

    # ---- fig5b sweep: optimized serial (warm CSR cache) -----------
    _time_fig5b(repeats=1)              # prime the CSR cache
    optimized_serial = _time_fig5b()

    # ---- fig5b sweep: process-pool fan-out ------------------------
    # one point per process count so run_sweep actually engages the
    # pool (a single point runs inline); total work equals the serial
    # sweep above
    pool_points = [(p,) for p in FIG5B_POINTS]
    t0 = time.perf_counter()
    run_sweep(pool_points, _fig5b_point, workers=2, cache=False)
    optimized_workers = time.perf_counter() - t0

    # ---- fig5b sweep: warm on-disk result cache -------------------
    cache_dir = pathlib.Path(__file__).parent / "_results" / ".sweep_cache"
    clear_result_cache(cache_dir)
    run_sweep(pool_points, _fig5b_point, cache=True, cache_dir=cache_dir)
    t0 = time.perf_counter()
    run_sweep(pool_points, _fig5b_point, cache=True, cache_dir=cache_dir)
    cached_rerun = time.perf_counter() - t0
    clear_result_cache(cache_dir)

    speedup_vs_baseline = baseline_sweep / optimized_serial
    # calibrate the pinned seed time to this host's speed via the
    # reproducible baseline leg (see PINNED_BASELINE_S)
    seed_here = SEED_FIG5B_S * (baseline_sweep / PINNED_BASELINE_S)
    speedup_vs_seed = seed_here / optimized_serial
    # preserve legs other benchmark files maintain in the same JSON
    # (test_perf_batch.py's "batched_dispatch"), so collection order
    # never silently drops a recording
    try:
        payload = json.loads(BENCH_JSON.read_text())
    except (OSError, ValueError):
        payload = {}
    payload.update({
        "engine": {
            "workload": f"{PROCS} procs x {YIELDS} plain-timeout yields",
            "events": fast_engine["events"],
            "baseline_s": round(baseline_engine["seconds"], 4),
            "fast_s": round(fast_engine["seconds"], 4),
            "events_per_sec_baseline": round(
                baseline_engine["events_per_sec"]),
            "events_per_sec_fast": round(fast_engine["events_per_sec"]),
            "speedup": round(fast_engine["events_per_sec"]
                             / baseline_engine["events_per_sec"], 3),
        },
        "fig5b_sweep": {
            "process_counts": list(FIG5B_POINTS),
            "seed_serial_s": SEED_FIG5B_S,
            "seed_measured_at_commit": SEED_FIG5B_COMMIT,
            "seed_serial_host_calibrated_s": round(seed_here, 4),
            "baseline_serial_cold_s": round(baseline_sweep, 4),
            "optimized_serial_warm_s": round(optimized_serial, 4),
            "optimized_workers2_s": round(optimized_workers, 4),
            "cached_rerun_s": round(cached_rerun, 4),
            "speedup_vs_seed": round(speedup_vs_seed, 3),
            "speedup_vs_baseline": round(speedup_vs_baseline, 3),
        },
        # host context: the --workers leg only shows real fan-out when
        # cpu_count > 1 (see the ROADMAP note on the 1-CPU recording)
        "host": {
            "cpu_count": os.cpu_count(),
        },
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
    })
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    lines = ["Simulation-core benchmark (BENCH_sim_core.json)",
             "metric                      | value",
             "----------------------------+----------------",
             f"engine events/sec baseline  | "
             f"{payload['engine']['events_per_sec_baseline']:>12,}",
             f"engine events/sec fast      | "
             f"{payload['engine']['events_per_sec_fast']:>12,}",
             f"fig5b seed serial (pinned)  | {SEED_FIG5B_S:>10.3f} s",
             f"fig5b baseline serial cold  | {baseline_sweep:>10.3f} s",
             f"fig5b optimized serial warm | {optimized_serial:>10.3f} s",
             f"fig5b optimized workers=2   | {optimized_workers:>10.3f} s",
             f"fig5b cached rerun          | {cached_rerun:>10.3f} s",
             f"fig5b speedup vs seed       | {speedup_vs_seed:>10.2f} x",
             f"fig5b speedup vs baseline   | {speedup_vs_baseline:>10.2f} x"]
    save_table("bench_sim_core", "\n".join(lines))

    assert fast_engine["events_per_sec"] > baseline_engine["events_per_sec"]
    # acceptance gate: >= 2x end-to-end on the fig5b sweep vs the seed
    assert speedup_vs_seed >= 2.0, (
        f"optimized fig5b sweep is only {speedup_vs_seed:.2f}x faster "
        f"than the recorded seed measurement (need >= 2x)")
    # reproducible secondary check against the in-tree baseline legs
    # (cannot reach the full seed gap — see SEED_FIG5B_S note)
    assert speedup_vs_baseline >= 1.3, (
        f"optimized fig5b sweep is only {speedup_vs_baseline:.2f}x "
        f"faster than the toggle-based baseline")
