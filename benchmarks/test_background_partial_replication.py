"""§II background: random partial replication does not pay off ([18]).

"To break down the 50%-efficiency-wall of replication, one can envision
partial redundancy ... It has been shown that if the replicated
processes are chosen randomly, partial replication does not pay off" —
which is why the paper proposes intra-parallelization instead.
"""

from repro.analysis import format_table, partial_replication_sweep

NODE_MTBF = 5.0 * 365 * 24 * 3600
DELTA = RESTART = 900.0
FRACTIONS = (0.0, 0.25, 0.5, 0.75, 1.0)


def test_partial_replication_bathtub(run_once, save_table):
    def sweep():
        return {n: partial_replication_sweep(n, NODE_MTBF, DELTA,
                                             RESTART, FRACTIONS)
                for n in (10_000, 100_000, 1_000_000)}

    data = run_once(sweep)
    rows = []
    for n, pts in data.items():
        rows.append([f"{n:,}"] + [e for _f, e in pts])
    table = format_table(
        ["processes"] + [f"p={f}" for f in FRACTIONS], rows,
        title="Partial replication, random selection (paper §II / "
              "[18]: interior fractions never win)")
    save_table("background_partial_replication", table)

    for n, pts in data.items():
        eff = dict(pts)
        best_endpoint = max(eff[0.0], eff[1.0])
        for f in (0.25, 0.5, 0.75):
            assert eff[f] <= best_endpoint + 1e-9
    # and at exascale, full replication dominates everything
    exa = dict(data[1_000_000])
    assert exa[1.0] == max(exa.values())
