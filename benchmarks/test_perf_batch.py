"""Batched-dispatch benchmark → the ``batched_dispatch`` leg of
``benchmarks/BENCH_sim_core.json``.

PR 3 made batch execution a first-class engine concept: the run loop
coalesces sole-earliest sleep wakes past the heap
(:meth:`repro.simulate.Simulator.run_batched`), and
:class:`repro.intra.LocalIntraRuntime` charges a whole section as one
multi-segment compute descriptor (one engine event instead of one per
task).  Both are order-exact optimizations — results are bit-identical
to the PR 1 fast path — so this benchmark measures pure dispatch speed:

* **section dispatch microbenchmark** — ranks running back-to-back
  sections of zero-work tasks with nonzero roofline costs, i.e. nothing
  but event dispatch, generator resumes and section bookkeeping.  The
  acceptance gate asserts the batched configuration is ≥ 1.3× faster
  than the PR 1 fast path (``Simulator.run`` + task-by-task sections).
* **work-sharing section microbenchmark** (PR 4) — the same shape
  through the *work-sharing* ``IntraRuntime`` (2 replicas of one
  logical rank splitting each section): split-on-send batching
  coalesces each replica's run of silent tasks into one wake, and
  section-shape pooling recycles the ``LaunchedTask``/``TaskDef``
  bookkeeping.  Gate: ≥ 1.3× vs the PR 3 state (task-by-task
  work-sharing sections, per-section allocation).
* **sleep coalescing microbenchmark** — a pure engine workload shaped
  like a compute-only stretch (one fast sleeper, peers on slow clocks),
  isolating the ``run`` vs ``run_batched`` heap-bypass win.
* **fig5b warm-serial** — the end-to-end Figure 5b sweep, batched vs
  PR 1 dispatch, including a bit-identity assertion on every result row
  and an improvement gate against the PR 1 recording of
  ``optimized_serial_warm_s`` (pinned below, same container family).

Run via ``make bench`` (runs after ``test_perf_engine.py``, which
rewrites the JSON; this file merges its leg into it).
"""

import gc
import json
import pathlib
import statistics
import time
import typing as _t

import numpy as np

import repro.intra.runtime as runtime_mod
import repro.simulate.engine as engine_mod
from repro.experiments.fig5 import fig5b
from repro.intra import (Tag, launch_intra_job, launch_native_job,
                         set_section_batching, set_task_pooling)
from repro.mpi import MpiWorld
from repro.netmodel import GRID5000_MACHINE, GRID5000_NETWORK, Cluster
from repro.simulate import Simulator

BENCH_JSON = pathlib.Path(__file__).parent / "BENCH_sim_core.json"

#: section microbenchmark shape: PROCS ranks × SECTIONS × TASKS
PROCS = 2
SECTIONS = 3000
TASKS = 16

#: work-sharing microbenchmark shape: one logical rank, two replicas
#: splitting WS_SECTIONS × WS_TASKS silent tasks (more tasks per
#: section than the native shape — split-on-send coalescing and task
#: pooling both scale with the per-section run length)
WS_LOGICAL = 2
WS_SECTIONS = 1000
WS_TASKS = 32

#: ``fig5b_sweep.optimized_serial_warm_s`` as recorded by
#: ``test_perf_engine.py`` at the PR 1/PR 2 state of the tree (commit
#: 14384c8, same container family, 2026-07-30).  The improvement gate
#: below asserts the batched+vectorized tree beats it with margin.
PR1_RECORDED_WARM_S = 0.7101
#: the fig5b PR-1-dispatch leg (``fig5b_warm_serial.pr1_dispatch_s``)
#: measured by *this* file in the same 2026-07-30 session.  The gate
#: scales PR1_RECORDED_WARM_S by (pr1-dispatch-now / this), so the
#: improvement assertion tracks the host's speed — an absolute pinned
#: second count fails on a slower box and passes regressions on a
#: faster one (the same calibration ``test_perf_engine.py`` applies to
#: its seed gate via ``PINNED_BASELINE_S``).
PINNED_PR1_DISPATCH_S = 0.5707

FIG5B_POINTS = (8, 16)


def _noop_task(buf):
    pass


def _task_cost(buf):
    # nonzero roofline cost => every task charges virtual time, but no
    # numpy work: the benchmark measures dispatch, not kernels
    return (4096.0, 4096.0)


def _section_program(ctx, comm, n_sections, n_tasks):
    buf = np.zeros(8)
    rt = ctx.intra
    for _ in range(n_sections):
        rt.section_begin()
        tid = rt.task_register(_noop_task, [Tag.IN], cost=_task_cost)
        for _ in range(n_tasks):
            rt.task_launch(tid, [buf])
        yield from rt.section_end()
    return None


def _time_section_workload(batched: bool) -> float:
    prev_engine = engine_mod.BATCHED_DEFAULT
    engine_mod.BATCHED_DEFAULT = batched
    prev_sections = set_section_batching(batched)
    try:
        world = MpiWorld(Cluster(1, GRID5000_MACHINE), GRID5000_NETWORK)
        launch_native_job(world, _section_program, PROCS,
                          args=(SECTIONS, TASKS))
        t0 = time.perf_counter()
        world.run()
        return time.perf_counter() - t0
    finally:
        engine_mod.BATCHED_DEFAULT = prev_engine
        set_section_batching(prev_sections)


def _time_worksharing_workload(optimized: bool) -> float:
    """The PR 4 gate workload: work-sharing sections of silent (IN-only)
    costed tasks.  ``optimized`` enables split-on-send batching *and*
    section-shape pooling; the baseline is the PR 3 state — task-by-task
    `IntraRuntime` sections with per-section object allocation (engine
    wake coalescing stays on in both: it predates this leg)."""
    prev_sections = set_section_batching(optimized)
    prev_pooling = set_task_pooling(optimized)
    try:
        world = MpiWorld(Cluster(WS_LOGICAL * 2, GRID5000_MACHINE),
                         GRID5000_NETWORK)
        launch_intra_job(world, _section_program, WS_LOGICAL,
                         args=(WS_SECTIONS, WS_TASKS))
        t0 = time.perf_counter()
        world.run()
        return time.perf_counter() - t0
    finally:
        set_section_batching(prev_sections)
        set_task_pooling(prev_pooling)


def _sleep_chain(sim, yields, dt):
    for _ in range(yields):
        yield sim.sleep(dt)


def _time_sleep_workload(batched: bool, yields: int = 200_000) -> float:
    """One fast sleeper + 7 slow ones: the fast sleeper's wakes are
    almost always the sole earliest event, the shape ``run_batched``'s
    defer slot targets."""
    sim = Simulator()
    sim.process(_sleep_chain(sim, yields, 0.001))
    for p in range(7):
        sim.process(_sleep_chain(sim, yields // 50, 1.7 + 0.13 * p))
    t0 = time.perf_counter()
    (sim.run_batched if batched else sim.run)()
    return time.perf_counter() - t0


def _time_fig5b_pair(repeats: int = 5) -> _t.Tuple[float, float]:
    """Median wall time of the warm fig5b sweep under PR 1 dispatch and
    under batched dispatch.  Samples are interleaved with alternating
    order (AB/BA/AB/...) so noise and drift on the 1-CPU container hit
    both configurations equally."""
    prev_engine = engine_mod.BATCHED_DEFAULT
    prev_sections = set_section_batching(True)
    pr1, batched = [], []

    def one(batch: bool, samples: _t.List[float]) -> None:
        engine_mod.BATCHED_DEFAULT = batch
        set_section_batching(batch)
        gc.collect()
        t0 = time.perf_counter()
        fig5b(process_counts=FIG5B_POINTS)
        samples.append(time.perf_counter() - t0)

    try:
        for i in range(repeats):
            pair = ((False, pr1), (True, batched))
            for batch, samples in (pair if i % 2 == 0 else pair[::-1]):
                one(batch, samples)
        return statistics.median(pr1), statistics.median(batched)
    finally:
        engine_mod.BATCHED_DEFAULT = prev_engine
        set_section_batching(prev_sections)


def _fig5b_rows(batched: bool):
    prev_engine = engine_mod.BATCHED_DEFAULT
    engine_mod.BATCHED_DEFAULT = batched
    prev_sections = set_section_batching(batched)
    try:
        return fig5b(process_counts=FIG5B_POINTS)
    finally:
        engine_mod.BATCHED_DEFAULT = prev_engine
        set_section_batching(prev_sections)


def test_bench_batched_dispatch(save_table):
    assert (runtime_mod.BATCH_SECTIONS and engine_mod.BATCHED_DEFAULT
            and runtime_mod.POOL_TASKS), \
        "batched dispatch + task pooling must be the default configuration"

    # ---- bit-identity: batched == PR 1 dispatch, row for row --------
    rows_batched = _fig5b_rows(batched=True)
    rows_pr1 = _fig5b_rows(batched=False)
    assert len(rows_batched) == len(rows_pr1)
    for rb, ru in zip(rows_batched, rows_pr1):
        assert rb == ru, (
            f"batched dispatch changed a fig5b result: {rb} != {ru}")

    # ---- section dispatch microbenchmark (the acceptance gate) ------
    # interleaved sampling: container noise hits both configurations
    sec_pr1_samples, sec_batched_samples = [], []
    for _ in range(3):
        sec_pr1_samples.append(_time_section_workload(batched=False))
        sec_batched_samples.append(_time_section_workload(batched=True))
    pr1_section = statistics.median(sec_pr1_samples)
    batched_section = statistics.median(sec_batched_samples)
    section_speedup = pr1_section / batched_section

    # ---- work-sharing section microbenchmark (the PR 4 gate) --------
    ws_pr3_samples, ws_opt_samples = [], []
    for _ in range(3):
        ws_pr3_samples.append(_time_worksharing_workload(optimized=False))
        ws_opt_samples.append(_time_worksharing_workload(optimized=True))
    pr3_worksharing = statistics.median(ws_pr3_samples)
    opt_worksharing = statistics.median(ws_opt_samples)
    worksharing_speedup = pr3_worksharing / opt_worksharing

    # ---- pure sleep-coalescing microbenchmark -----------------------
    sleep_pr1_samples, sleep_batched_samples = [], []
    for _ in range(3):
        sleep_pr1_samples.append(_time_sleep_workload(batched=False))
        sleep_batched_samples.append(_time_sleep_workload(batched=True))
    pr1_sleep = statistics.median(sleep_pr1_samples)
    batched_sleep = statistics.median(sleep_batched_samples)
    sleep_speedup = pr1_sleep / batched_sleep

    # ---- fig5b warm serial ------------------------------------------
    fig5b_pr1, fig5b_batched = _time_fig5b_pair()
    # calibrate the pinned PR 1 recording to this host's current speed
    pr1_recorded_here = PR1_RECORDED_WARM_S * (fig5b_pr1
                                               / PINNED_PR1_DISPATCH_S)

    leg = {
        "section_microbench": {
            "workload": f"{PROCS} ranks x {SECTIONS} sections x "
                        f"{TASKS} zero-work costed tasks",
            "pr1_dispatch_s": round(pr1_section, 4),
            "batched_s": round(batched_section, 4),
            "speedup": round(section_speedup, 3),
        },
        "worksharing_section_microbench": {
            "workload": f"{WS_LOGICAL} logical ranks x 2 replicas x "
                        f"{WS_SECTIONS} work-shared sections x "
                        f"{WS_TASKS} silent costed tasks",
            "pr3_taskbytask_s": round(pr3_worksharing, 4),
            "split_on_send_pooled_s": round(opt_worksharing, 4),
            "speedup": round(worksharing_speedup, 3),
        },
        "sleep_microbench": {
            "workload": "1 fast sleeper x 200k wakes + 7 slow sleepers",
            "pr1_dispatch_s": round(pr1_sleep, 4),
            "batched_s": round(batched_sleep, 4),
            "speedup": round(sleep_speedup, 3),
        },
        "fig5b_warm_serial": {
            "pr1_dispatch_s": round(fig5b_pr1, 4),
            "batched_s": round(fig5b_batched, 4),
            "speedup": round(fig5b_pr1 / fig5b_batched, 3),
            "pr1_recorded_warm_s": PR1_RECORDED_WARM_S,
            "pr1_recorded_host_calibrated_s": round(pr1_recorded_here, 4),
            "improvement_vs_pr1_recording": round(
                pr1_recorded_here / fig5b_batched, 3),
            "results_bit_identical": True,
        },
    }
    # merge into the JSON test_perf_engine.py rewrites (make bench runs
    # the two files in that order)
    payload = json.loads(BENCH_JSON.read_text()) if BENCH_JSON.exists() \
        else {}
    payload["batched_dispatch"] = leg
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    lines = ["Batched-dispatch benchmark (BENCH_sim_core.json)",
             "metric                        | value",
             "------------------------------+----------------",
             f"section microbench PR1        | {pr1_section:>10.3f} s",
             f"section microbench batched    | {batched_section:>10.3f} s",
             f"section dispatch speedup      | {section_speedup:>10.2f} x",
             f"work-sharing microbench PR3   | {pr3_worksharing:>10.3f} s",
             f"work-sharing split-on-send    | {opt_worksharing:>10.3f} s",
             f"work-sharing section speedup  | {worksharing_speedup:>10.2f} x",
             f"sleep microbench PR1          | {pr1_sleep:>10.3f} s",
             f"sleep microbench batched      | {batched_sleep:>10.3f} s",
             f"sleep coalescing speedup      | {sleep_speedup:>10.2f} x",
             f"fig5b warm PR1 dispatch       | {fig5b_pr1:>10.3f} s",
             f"fig5b warm batched            | {fig5b_batched:>10.3f} s",
             f"fig5b vs PR1 recording        | "
             f"{pr1_recorded_here / fig5b_batched:>10.2f} x"]
    save_table("bench_batched_dispatch", "\n".join(lines))

    # acceptance gate: >= 1.3x on the batched-dispatch microbenchmark
    assert section_speedup >= 1.3, (
        f"batched section dispatch is only {section_speedup:.2f}x faster "
        f"than the PR 1 fast path (need >= 1.3x)")
    # acceptance gate: >= 1.3x on the work-sharing section
    # microbenchmark (split-on-send batching + section-shape pooling
    # vs the PR 3 task-by-task work-sharing path)
    assert worksharing_speedup >= 1.3, (
        f"split-on-send + pooling is only {worksharing_speedup:.2f}x "
        f"faster than the PR 3 task-by-task work-sharing path "
        f"(need >= 1.3x)")
    # the heap-bypass must help, never hurt, on its target shape
    assert sleep_speedup >= 1.0, (
        f"sleep coalescing regressed the engine: {sleep_speedup:.2f}x")
    # batching must not regress the end-to-end sweep (parity within the
    # 1-CPU container's noise floor; the dispatch win is concentrated in
    # the microbenchmarks, the end-to-end win in the vectorized kernels)
    assert fig5b_pr1 / fig5b_batched >= 0.90, (
        f"batched dispatch slowed fig5b: {fig5b_pr1 / fig5b_batched:.2f}x")
    # ...and the tree must beat the PR 1 warm-serial recording, with
    # the pinned time scaled to this host's speed (PINNED_PR1_DISPATCH_S)
    assert pr1_recorded_here / fig5b_batched >= 1.05, (
        f"fig5b warm serial ({fig5b_batched:.3f}s) does not improve on "
        f"the host-calibrated PR 1 recording ({pr1_recorded_here:.3f}s)")
